#include <gtest/gtest.h>

#include <map>

#include "geo/places.hpp"
#include "stats/summary.hpp"
#include "synth/world.hpp"
#include "weather/weather.hpp"

namespace satnet::weather {
namespace {

TEST(WeatherFieldTest, Deterministic) {
  const WeatherField a, b;
  for (double t = 0; t < 86400.0 * 10; t += 7200.0) {
    EXPECT_EQ(a.at({40.0, -100.0, 0}, t), b.at({40.0, -100.0, 0}, t));
  }
}

TEST(WeatherFieldTest, SeedChangesField) {
  WeatherConfig c1, c2;
  c2.seed = 999;
  const WeatherField a(c1), b(c2);
  int differ = 0;
  for (double t = 0; t < 86400.0 * 30; t += 3600.0) {
    if (a.at({40.0, -100.0, 0}, t) != b.at({40.0, -100.0, 0}, t)) ++differ;
  }
  EXPECT_GT(differ, 10);
}

TEST(WeatherFieldTest, ConditionPersistsWithinCell) {
  const WeatherField field;
  // Same 3-degree cell, same 6-hour epoch: identical condition.
  const Condition c1 = field.at({40.1, -100.1, 0}, 1000.0);
  const Condition c2 = field.at({40.9, -100.9, 0}, 5000.0);
  EXPECT_EQ(c1, c2);
}

TEST(WeatherFieldTest, TropicsWetterThanPoles) {
  const WeatherField field;
  auto rain_fraction = [&](double lat) {
    int rainy = 0, total = 0;
    for (double lon = -180; lon < 180; lon += 3.5) {
      for (double t = 0; t < 86400.0 * 60; t += 6.5 * 3600) {
        const Condition c = field.at({lat, lon, 0}, t);
        if (c == Condition::rain || c == Condition::heavy_rain) ++rainy;
        ++total;
      }
    }
    return static_cast<double>(rainy) / total;
  };
  EXPECT_GT(rain_fraction(5.0), 1.5 * rain_fraction(60.0));
}

TEST(WeatherFieldTest, ClearHasNoImpact) {
  const WeatherField field;
  const LinkImpact i =
      field.impact(Condition::clear, orbit::OrbitClass::geo, 0.0, {0, 0, 0});
  EXPECT_DOUBLE_EQ(i.capacity_factor, 1.0);
  EXPECT_DOUBLE_EQ(i.extra_sat_loss, 0.0);
  EXPECT_FALSE(i.outage);
}

TEST(WeatherFieldTest, ImpactOrderingByCondition) {
  const WeatherField field;
  for (const auto orbit_class : {orbit::OrbitClass::leo, orbit::OrbitClass::geo}) {
    double prev = 1.1;
    for (const Condition c : {Condition::clear, Condition::cloudy, Condition::rain,
                              Condition::heavy_rain}) {
      const LinkImpact i = field.impact(c, orbit_class, 0.0, {0, 0, 0});
      EXPECT_LT(i.capacity_factor, prev);
      prev = i.capacity_factor;
    }
  }
}

TEST(WeatherFieldTest, GeoHitHarderThanLeo) {
  const WeatherField field;
  for (const Condition c : {Condition::rain, Condition::heavy_rain}) {
    const LinkImpact geo = field.impact(c, orbit::OrbitClass::geo, 0.0, {0, 0, 0});
    const LinkImpact leo = field.impact(c, orbit::OrbitClass::leo, 0.0, {0, 0, 0});
    EXPECT_LT(geo.capacity_factor, leo.capacity_factor);
    EXPECT_GT(geo.extra_sat_loss, leo.extra_sat_loss);
  }
}

TEST(WeatherFieldTest, OnlyGeoHeavyRainCausesOutages) {
  const WeatherField field;
  bool geo_outage = false;
  for (double lon = -180; lon < 180; lon += 2.9) {
    const geo::GeoPoint p{10.0, lon, 0};
    if (field.impact(Condition::heavy_rain, orbit::OrbitClass::geo, 0.0, p).outage) {
      geo_outage = true;
    }
    EXPECT_FALSE(
        field.impact(Condition::heavy_rain, orbit::OrbitClass::leo, 0.0, p).outage);
  }
  EXPECT_TRUE(geo_outage);
}

// Regression: an outage impact must also zero the capacity factor —
// transport::apply_impairment relies on the pair being consistent, and
// a dead link that still advertised fractional capacity once produced
// trickling flows on "down" GEO paths.
TEST(WeatherFieldTest, OutageAlwaysZeroesCapacity) {
  const WeatherField field;
  bool saw_outage = false;
  for (double lon = -180; lon < 180; lon += 1.7) {
    for (double lat : {-30.0, 0.0, 10.0, 45.0}) {
      const LinkImpact i =
          field.impact(Condition::heavy_rain, orbit::OrbitClass::geo, 0.0, {lat, lon, 0});
      if (i.outage) {
        saw_outage = true;
        EXPECT_DOUBLE_EQ(i.capacity_factor, 0.0)
            << "outage at lat=" << lat << " lon=" << lon
            << " advertised capacity_factor=" << i.capacity_factor;
      }
    }
  }
  EXPECT_TRUE(saw_outage);
}

TEST(WeatherWorldTest, DisabledByDefault) {
  const synth::World world;
  stats::Rng rng(1);
  for (const auto& sub : world.subscribers()) {
    const auto p = world.sample_path(sub, 0.0, rng);
    if (p.ok) {
      EXPECT_EQ(p.sky, Condition::clear);
      break;
    }
  }
}

TEST(WeatherWorldTest, EnabledWorldDegradesRainySamples) {
  synth::WorldConfig cfg;
  cfg.enable_weather = true;
  const synth::World world(cfg);
  const WeatherField field(cfg.weather);
  stats::Rng rng(2);

  std::map<Condition, std::vector<double>> capacity_ratio;
  for (const auto& sub : world.subscribers()) {
    if (sub.tech != synth::AccessTech::satellite) continue;
    for (double t = 0; t < 86400.0 * 20; t += 86400.0 * 2 + 3600.0) {
      const auto p = world.sample_path(sub, t, rng);
      if (!p.ok) continue;
      capacity_ratio[p.sky].push_back(p.download.bottleneck_mbps / sub.plan_down_mbps);
    }
    if (capacity_ratio[Condition::rain].size() > 50 &&
        capacity_ratio[Condition::clear].size() > 50) {
      break;
    }
  }
  ASSERT_FALSE(capacity_ratio[Condition::clear].empty());
  ASSERT_FALSE(capacity_ratio[Condition::rain].empty());
  EXPECT_LT(stats::mean(capacity_ratio[Condition::rain]),
            stats::mean(capacity_ratio[Condition::clear]));
}

class ConditionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConditionSweep, ImpactFieldsSane) {
  const WeatherField field;
  const auto c = static_cast<Condition>(GetParam());
  for (const auto orbit_class :
       {orbit::OrbitClass::leo, orbit::OrbitClass::meo, orbit::OrbitClass::geo}) {
    const LinkImpact i = field.impact(c, orbit_class, 1234.0, {45, 9, 0});
    EXPECT_GT(i.capacity_factor, 0.0);
    EXPECT_LE(i.capacity_factor, 1.0);
    EXPECT_GE(i.extra_sat_loss, 0.0);
    EXPECT_LT(i.extra_sat_loss, 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllConditions, ConditionSweep, ::testing::Range(0, 4));

}  // namespace
}  // namespace satnet::weather
