#include <gtest/gtest.h>

#include "snoid/tcptrace.hpp"
#include "transport/tcp.hpp"

namespace satnet::snoid {
namespace {

using transport::TcpInfoSnapshot;

/// Hand-builds a snapshot sequence at 100 ms cadence.
std::vector<TcpInfoSnapshot> make_trace(
    const std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>>&
        sent_acked_retrans) {
  std::vector<TcpInfoSnapshot> out;
  double t = 0;
  for (const auto& [sent, acked, retrans] : sent_acked_retrans) {
    TcpInfoSnapshot s;
    s.t_ms = t;
    s.bytes_sent = sent;
    s.bytes_acked = acked;
    s.bytes_retrans = retrans;
    out.push_back(s);
    t += 100.0;
  }
  return out;
}

TEST(TcpTraceTest, EmptyTraceIsClean) {
  EXPECT_EQ(analyze_trace({}).profile, RetransProfile::clean);
  EXPECT_TRUE(analyze_trace({}).episodes.empty());
}

TEST(TcpTraceTest, LossFreeFlowIsClean) {
  const auto trace = make_trace({{0, 0, 0},
                                 {100000, 90000, 0},
                                 {200000, 190000, 0},
                                 {300000, 290000, 0}});
  const auto a = analyze_trace(trace);
  EXPECT_EQ(a.profile, RetransProfile::clean);
  EXPECT_EQ(a.total_retrans_bytes, 0u);
  EXPECT_DOUBLE_EQ(a.retrans_fraction, 0.0);
}

TEST(TcpTraceTest, EpisodeBytesSumToTotal) {
  const auto trace = make_trace({{0, 0, 0},
                                 {100000, 90000, 3000},
                                 {200000, 190000, 3000},
                                 {300000, 200000, 9000},
                                 {400000, 300000, 9000}});
  const auto a = analyze_trace(trace);
  std::uint64_t sum = 0;
  for (const auto& e : a.episodes) sum += e.bytes;
  EXPECT_EQ(sum, a.total_retrans_bytes);
  EXPECT_EQ(a.episodes.size(), 2u);
}

TEST(TcpTraceTest, AdjacentRetransIntervalsMergeIntoOneEpisode) {
  const auto trace = make_trace({{0, 0, 0},
                                 {100000, 90000, 1000},
                                 {200000, 180000, 2000},
                                 {300000, 270000, 3000},
                                 {400000, 370000, 3000}});
  const auto a = analyze_trace(trace);
  EXPECT_EQ(a.episodes.size(), 1u);
  EXPECT_EQ(a.episodes[0].bytes, 3000u);
}

TEST(TcpTraceTest, TimeoutLikeEpisodeDetectedByAckStall) {
  // Ack progress freezes for 1.2 s while retransmissions accumulate.
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> rows;
  rows.push_back({0, 0, 0});
  rows.push_back({100000, 90000, 0});
  for (int i = 0; i < 12; ++i) {
    rows.push_back({110000 + i * 100, 90000, 20000});  // stalled acks
  }
  rows.push_back({400000, 200000, 20000});
  const auto a = analyze_trace(rows.empty() ? std::vector<TcpInfoSnapshot>{}
                                            : make_trace(rows));
  ASSERT_EQ(a.episodes.size(), 1u);
  EXPECT_TRUE(a.episodes[0].timeout_like);
  EXPECT_EQ(a.profile, RetransProfile::timeout_driven);
  EXPECT_GE(a.longest_ack_stall_ms, 1200.0);
}

TEST(TcpTraceTest, FastRecoveryEpisodesAreLossDriven) {
  // Several small retransmission bumps with continuous ack progress.
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> rows;
  std::uint64_t sent = 0, acked = 0, retrans = 0;
  for (int i = 0; i < 30; ++i) {
    sent += 100000;
    acked += 95000;
    if (i % 7 == 3) retrans += 30000;  // sparse fast-recovery episodes
    rows.push_back({sent, acked, retrans});
  }
  const auto a = analyze_trace(make_trace(rows));
  EXPECT_GT(a.episodes.size(), 2u);
  EXPECT_EQ(a.profile, RetransProfile::loss_driven);
}

// ------------------- end-to-end: profiles of simulated flows -----------

TraceAnalysis analyze_flow(const transport::PathProfile& p, std::uint64_t seed) {
  transport::TcpFlow flow(p, transport::TcpOptions{}, stats::Rng(seed));
  const auto result = flow.run_for(12000);
  return analyze_trace(result.snapshots);
}

TEST(TcpTraceTest, GeoNonPepFlowsAreTimeoutDriven) {
  transport::PathProfile p;
  p.base_rtt_ms = 650;
  p.bottleneck_mbps = 8;
  p.jitter_ms = 60;
  p.spurious_rto_prob = 0.12;
  p.sat_loss = 0.005;
  int timeout_driven = 0, n = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto a = analyze_flow(p, seed);
    if (a.profile != RetransProfile::clean) {
      ++n;
      if (a.profile == RetransProfile::timeout_driven) ++timeout_driven;
    }
  }
  ASSERT_GT(n, 4);
  EXPECT_GT(timeout_driven * 2, n);  // majority timeout-driven
}

TEST(TcpTraceTest, PepGeoFlowsAvoidTimeoutRecovery) {
  // A PEP shields the end-to-end loop from the satellite segment: what
  // little retransmission remains (slow-start overshoot residue) recovers
  // via fast retransmit, never via RTO stalls.
  transport::PathProfile p;
  p.base_rtt_ms = 620;
  p.bottleneck_mbps = 20;
  p.jitter_ms = 45;
  p.sat_loss = 0.018;
  p.spurious_rto_prob = 0.004;
  p.pep = true;
  int timeout_driven = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    if (analyze_flow(p, seed).profile == RetransProfile::timeout_driven) {
      ++timeout_driven;
    }
  }
  EXPECT_LE(timeout_driven, 2);
}

TEST(TcpTraceTest, GoodputMatchesFlowResult) {
  transport::PathProfile p;
  p.base_rtt_ms = 55;
  p.bottleneck_mbps = 80;
  transport::TcpFlow flow(p, transport::TcpOptions{}, stats::Rng(3));
  const auto result = flow.run_for(10000);
  const auto a = analyze_trace(result.snapshots);
  EXPECT_NEAR(a.goodput_mbps, result.goodput_mbps, result.goodput_mbps * 0.1);
  EXPECT_NEAR(a.retrans_fraction, result.retrans_fraction, 0.01);
}

}  // namespace
}  // namespace satnet::snoid
