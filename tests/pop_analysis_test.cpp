// Unit tests for the RIPE-side analytics with hand-crafted datasets
// (integration_test covers them end-to-end; these pin the edge cases).
#include <gtest/gtest.h>

#include "snoid/pop_analysis.hpp"

namespace satnet::snoid {
namespace {

ripe::Probe make_probe(int id, const char* country, const char* state = "") {
  ripe::Probe p;
  p.id = id;
  p.country = country;
  p.us_state = state;
  return p;
}

ripe::TracerouteRecord make_trace(int probe, double day, const char* pop,
                                  double cgnat_rtt, bool via_cgnat = true) {
  ripe::TracerouteRecord t;
  t.probe_id = probe;
  t.t_sec = day * 86400.0;
  t.root = 'A';
  t.via_cgnat = via_cgnat;
  t.pop_name = via_cgnat ? pop : "";
  t.cgnat_rtt_ms = via_cgnat ? cgnat_rtt : 0.0;
  t.dest_rtt_ms = cgnat_rtt + 10.0;
  t.hop_count = 8;
  return t;
}

/// A probe is validated when >50% of its traceroutes cross the CGNAT.
ripe::AtlasDataset two_probe_dataset() {
  ripe::AtlasDataset ds;
  ds.probes = {make_probe(1, "NZ"), make_probe(2, "DE")};
  for (int day = 0; day < 30; ++day) {
    ds.traceroutes.push_back(make_trace(1, day, "sydnaus1", 53.0));
    ds.traceroutes.push_back(make_trace(2, day, "frntdeu1", 35.0));
  }
  return ds;
}

TEST(PopAnalysisTest, RttByCountryGroupsAndSorts) {
  const auto ds = two_probe_dataset();
  const auto rows = pop_rtt_by_country(ds, /*us_only=*/false);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key, "DE");  // lower median first
  EXPECT_EQ(rows[1].key, "NZ");
  EXPECT_NEAR(rows[0].rtt.median, 35.0, 0.1);
}

TEST(PopAnalysisTest, UsOnlyFiltering) {
  auto ds = two_probe_dataset();
  ds.probes.push_back(make_probe(3, "US", "WA"));
  for (int day = 0; day < 30; ++day) {
    ds.traceroutes.push_back(make_trace(3, day, "sttlwax1", 45.0));
  }
  const auto us = pop_rtt_by_country(ds, /*us_only=*/true);
  ASSERT_EQ(us.size(), 1u);
  EXPECT_EQ(us[0].key, "US");
  const auto by_state = pop_rtt_by_us_state(ds);
  ASSERT_EQ(by_state.size(), 1u);
  EXPECT_EQ(by_state[0].key, "WA");
}

TEST(PopAnalysisTest, UnvalidatedProbeExcluded) {
  auto ds = two_probe_dataset();
  // Probe 9: metadata says Starlink, traceroutes say otherwise.
  ds.probes.push_back(make_probe(9, "FR"));
  for (int day = 0; day < 30; ++day) {
    ds.traceroutes.push_back(make_trace(9, day, "", 20.0, /*via_cgnat=*/false));
  }
  const auto rows = pop_rtt_by_country(ds, false);
  for (const auto& r : rows) EXPECT_NE(r.key, "FR");
}

TEST(PopAnalysisTest, AssociationHistoryTracksIntervals) {
  ripe::AtlasDataset ds;
  ds.probes = {make_probe(1, "NZ")};
  for (int day = 0; day < 70; ++day) {
    ds.traceroutes.push_back(make_trace(1, day, "sydnaus1", 53.0));
  }
  for (int day = 70; day < 365; ++day) {
    ds.traceroutes.push_back(make_trace(1, day, "acklnzl1", 34.0));
  }
  const auto assoc = pop_association_history(ds);
  ASSERT_EQ(assoc.size(), 2u);
  EXPECT_EQ(assoc[0].pop_name, "sydnaus1");
  EXPECT_NEAR(assoc[0].first_day, 0.0, 0.01);
  EXPECT_NEAR(assoc[0].last_day, 69.0, 0.01);
  EXPECT_EQ(assoc[1].pop_name, "acklnzl1");
  EXPECT_EQ(assoc[0].n_traceroutes, 70u);
}

TEST(PopAnalysisTest, MigrationDetectionReportsRttShift) {
  ripe::AtlasDataset ds;
  ds.probes = {make_probe(1, "NZ")};
  for (int day = 0; day < 70; ++day) {
    ds.traceroutes.push_back(make_trace(1, day, "sydnaus1", 53.0 + (day % 3)));
  }
  for (int day = 70; day < 150; ++day) {
    ds.traceroutes.push_back(make_trace(1, day, "acklnzl1", 34.0 + (day % 3)));
  }
  const auto migrations = detect_pop_migrations(ds);
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_EQ(migrations[0].from_pop, "sydnaus1");
  EXPECT_EQ(migrations[0].to_pop, "acklnzl1");
  EXPECT_NEAR(migrations[0].day, 70.0, 1.0);
  EXPECT_GT(migrations[0].rtt_before_ms, migrations[0].rtt_after_ms + 15.0);
}

TEST(PopAnalysisTest, FlipFlopProducesTwoMigrations) {
  ripe::AtlasDataset ds;
  ds.probes = {make_probe(1, "US", "NV")};
  auto add = [&](int from, int to, const char* pop, double rtt) {
    for (int day = from; day < to; ++day) {
      ds.traceroutes.push_back(make_trace(1, day, pop, rtt));
    }
  };
  add(0, 130, "lsancax1", 48.0);
  add(130, 160, "dnvrcox1", 95.0);
  add(160, 365, "lsancax1", 48.0);
  const auto migrations = detect_pop_migrations(ds);
  ASSERT_EQ(migrations.size(), 2u);
  EXPECT_LT(migrations[0].rtt_before_ms, migrations[0].rtt_after_ms);  // damage
  EXPECT_GT(migrations[1].rtt_before_ms, migrations[1].rtt_after_ms);  // revert
}

TEST(PopAnalysisTest, NoMigrationWithoutPopChange) {
  ripe::AtlasDataset ds;
  ds.probes = {make_probe(1, "DE")};
  for (int day = 0; day < 200; ++day) {
    // RTT drifts but the PoP never changes: not a migration.
    ds.traceroutes.push_back(make_trace(1, day, "frntdeu1", 35.0 + day * 0.05));
  }
  EXPECT_TRUE(detect_pop_migrations(ds).empty());
}

TEST(PopAnalysisTest, RootHopsSummaryPerCountry) {
  const auto ds = two_probe_dataset();
  const auto hops = root_hops_by_country(ds);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_DOUBLE_EQ(hops.at("NZ").p50, 8.0);
}

TEST(PopAnalysisTest, EmptyDatasetYieldsNothing) {
  const ripe::AtlasDataset empty;
  EXPECT_TRUE(pop_rtt_by_country(empty, false).empty());
  EXPECT_TRUE(pop_association_history(empty).empty());
  EXPECT_TRUE(detect_pop_migrations(empty).empty());
}

}  // namespace
}  // namespace satnet::snoid
