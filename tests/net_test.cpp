#include <gtest/gtest.h>

#include <cmath>

#include "geo/places.hpp"
#include "net/ipv4.hpp"
#include "net/route.hpp"

namespace satnet::net {
namespace {

// ----------------------------------------------------------------- IPv4

TEST(Ipv4Test, ParseAndFormatRoundTrip) {
  const auto a = Ipv4::parse("100.64.0.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "100.64.0.1");
  EXPECT_EQ(*a, kCgnatGateway);
}

TEST(Ipv4Test, ParseRejectsGarbage) {
  EXPECT_FALSE(Ipv4::parse("").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4::parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4::parse("1.2.3.4 ").has_value());
}

TEST(Ipv4Test, OctetConstructor) {
  EXPECT_EQ(Ipv4(192, 168, 1, 1).to_string(), "192.168.1.1");
  EXPECT_EQ(Ipv4(0, 0, 0, 0).value(), 0u);
  EXPECT_EQ(Ipv4(255, 255, 255, 255).value(), 0xffffffffu);
}

TEST(Ipv4Test, CgnatRange) {
  EXPECT_TRUE(Ipv4(100, 64, 0, 1).is_cgnat());
  EXPECT_TRUE(Ipv4(100, 127, 255, 255).is_cgnat());
  EXPECT_FALSE(Ipv4(100, 128, 0, 0).is_cgnat());
  EXPECT_FALSE(Ipv4(100, 63, 255, 255).is_cgnat());
  EXPECT_FALSE(Ipv4(192, 168, 1, 1).is_cgnat());
}

TEST(Ipv4Test, Ordering) {
  EXPECT_LT(Ipv4(1, 0, 0, 0), Ipv4(2, 0, 0, 0));
  EXPECT_LT(Ipv4(1, 0, 0, 1), Ipv4(1, 0, 1, 0));
}

TEST(Prefix24Test, ContainsItsHosts) {
  const Prefix24 p{Ipv4(45, 232, 115, 77)};
  EXPECT_EQ(p.to_string(), "45.232.115.0/24");
  EXPECT_TRUE(p.contains(Ipv4(45, 232, 115, 1)));
  EXPECT_TRUE(p.contains(Ipv4(45, 232, 115, 254)));
  EXPECT_FALSE(p.contains(Ipv4(45, 232, 116, 1)));
}

TEST(Prefix24Test, HostAddressing) {
  const Prefix24 p{Ipv4(10, 0, 5, 0)};
  EXPECT_EQ(p.host(1).to_string(), "10.0.5.1");
  EXPECT_EQ(p.host(200).to_string(), "10.0.5.200");
}

TEST(PrefixPoolTest, SequentialAllocation) {
  PrefixPool pool(Ipv4(45, 40, 0, 0), 3);
  EXPECT_EQ(pool.allocate().to_string(), "45.40.0.0/24");
  EXPECT_EQ(pool.allocate().to_string(), "45.40.1.0/24");
  EXPECT_EQ(pool.remaining(), 1u);
  pool.allocate();
  EXPECT_THROW(pool.allocate(), std::runtime_error);
}

TEST(PrefixPoolTest, RejectsUnalignedBase) {
  EXPECT_THROW(PrefixPool(Ipv4(10, 0, 0, 5), 4), std::invalid_argument);
}

// ---------------------------------------------------------------- route

TEST(RouteTest, EmptyRouteHasNaNRtt) {
  EXPECT_TRUE(std::isnan(Route{}.destination_rtt_ms()));
}

TEST(RouteTest, FindIpLocatesCgnatHop) {
  Route r;
  r.hops.push_back({1, "cpe", Ipv4(192, 168, 1, 1), 1.0, true});
  r.hops.push_back({2, "", kCgnatGateway, 35.0, true});
  const Hop* h = r.find_ip(kCgnatGateway);
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->rtt_ms, 35.0);
  EXPECT_EQ(r.find_ip(Ipv4(8, 8, 8, 8)), nullptr);
}

TEST(BackboneTest, HopCountGrowsWithDistance) {
  const Backbone b;
  EXPECT_LT(b.expected_hops(100.0), b.expected_hops(5000.0));
  EXPECT_GE(b.expected_hops(0.0), 3);
}

TEST(BackboneTest, CumulativeRttNondecreasing) {
  const Backbone b;
  stats::Rng rng(3);
  const auto hops = b.build(geo::city_point("seattle"), geo::city_point("new york"),
                            40.0, 4, rng);
  ASSERT_GT(hops.size(), 3u);
  EXPECT_GE(hops.front().rtt_ms, 40.0);
  EXPECT_GT(hops.back().rtt_ms, hops.front().rtt_ms);
}

TEST(BackboneTest, TtlsSequential) {
  const Backbone b;
  stats::Rng rng(4);
  const auto hops =
      b.build(geo::city_point("london"), geo::city_point("tokyo"), 30.0, 4, rng);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    EXPECT_EQ(hops[i].ttl, 4 + static_cast<int>(i));
  }
}

TEST(BackboneTest, FinalHopRttReflectsFiberDistance) {
  const Backbone b;
  stats::Rng rng(5);
  const geo::GeoPoint from = geo::city_point("seattle");
  const geo::GeoPoint to = geo::city_point("new york");
  const auto hops = b.build(from, to, 0.0, 1, rng);
  const double fiber_rtt = 2.0 * geo::fiber_delay_ms(geo::surface_distance_km(from, to));
  EXPECT_NEAR(hops.back().rtt_ms, fiber_rtt, fiber_rtt * 0.25 + 5.0);
}

TEST(BackboneTest, ToStringRendersTracerouteLines) {
  Route r;
  r.hops.push_back({1, "cpe.lan", Ipv4(192, 168, 1, 1), 1.2, true});
  r.hops.push_back({2, "", kCgnatGateway, 40.0, false});
  const std::string text = to_string(r);
  EXPECT_NE(text.find("cpe.lan"), std::string::npos);
  EXPECT_NE(text.find("*"), std::string::npos);
}

class BackboneDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(BackboneDistanceProperty, RttScalesWithDistance) {
  const Backbone b;
  stats::Rng rng(GetParam());
  const double km = 200.0 + GetParam() * 900.0;
  const geo::GeoPoint from{0, 0, 0};
  // Move roughly `km` east along the equator (1 deg ~ 111 km).
  const geo::GeoPoint to{0, km / 111.0, 0};
  const auto hops = b.build(from, to, 0.0, 1, rng);
  ASSERT_FALSE(hops.empty());
  const double expected = 2.0 * geo::fiber_delay_ms(km);
  EXPECT_NEAR(hops.back().rtt_ms, expected, expected * 0.3 + 6.0);
}

INSTANTIATE_TEST_SUITE_P(Distances, BackboneDistanceProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace satnet::net
