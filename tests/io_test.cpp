#include <gtest/gtest.h>

#include <sstream>

#include "io/csv.hpp"
#include "io/report.hpp"
#include "mlab/campaign.hpp"
#include "snoid/pipeline.hpp"
#include "synth/world.hpp"

namespace satnet::io {
namespace {

// ------------------------------------------------------------- CsvWriter

TEST(CsvWriterTest, PlainFieldsUnquoted) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape("12.5"), "12.5");
}

TEST(CsvWriterTest, CommaTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvWriterTest, QuotesDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriterTest, NewlineQuoted) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, HeaderThenRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row({"1", "2"});
  csv.row({"3", "x,y"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n3,\"x,y\"\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvWriterTest, RowWidthEnforced) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  EXPECT_THROW(csv.row({"only one"}), std::invalid_argument);
}

TEST(CsvWriterTest, RowBeforeHeaderThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  EXPECT_THROW(csv.row({"x"}), std::logic_error);
}

TEST(CsvWriterTest, DoubleHeaderThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a"});
  EXPECT_THROW(csv.header({"a"}), std::logic_error);
}

// --------------------------------------------------------------- exports

class ExportTest : public ::testing::Test {
 protected:
  static const mlab::NdtDataset& dataset() {
    static const mlab::NdtDataset ds = [] {
      static const synth::World world;
      mlab::CampaignConfig cfg;
      cfg.volume_scale = 0.00005;
      cfg.min_tests_per_sno = 5;
      return mlab::run_campaign(world, cfg);
    }();
    return ds;
  }
};

TEST_F(ExportTest, NdtRowCountMatchesDataset) {
  std::ostringstream out;
  EXPECT_EQ(export_ndt(dataset(), out), dataset().size());
  // header + one line per record
  std::size_t lines = 0;
  for (const char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, dataset().size() + 1);
}

TEST_F(ExportTest, NdtHeaderColumns) {
  std::ostringstream out;
  export_ndt(dataset(), out);
  const std::string text = out.str();
  const std::string header = text.substr(0, text.find('\n'));
  EXPECT_NE(header.find("latency_p5_ms"), std::string::npos);
  EXPECT_NE(header.find("truth_operator"), std::string::npos);
  // 15 columns -> 14 commas.
  EXPECT_EQ(std::count(header.begin(), header.end(), ','), 14);
}

TEST_F(ExportTest, PipelineExportHasOneRowPerOperator) {
  const auto result = snoid::run_pipeline(dataset());
  std::ostringstream out;
  EXPECT_EQ(export_pipeline(result, out), result.operators.size());
  EXPECT_NE(out.str().find("starlink"), std::string::npos);
}

TEST_F(ExportTest, TracerouteExportWorks) {
  ripe::AtlasConfig cfg;
  cfg.duration_days = 3.0;
  cfg.round_interval_hours = 24.0;
  const auto atlas = ripe::run_atlas_campaign(cfg);
  std::ostringstream out;
  EXPECT_EQ(export_traceroutes(atlas, out), atlas.traceroutes.size());
  EXPECT_NE(out.str().find("cgnat_rtt_ms"), std::string::npos);
}

TEST_F(ExportTest, StudyReportContainsAllSections) {
  const auto result = snoid::run_pipeline(dataset());
  ripe::AtlasConfig cfg;
  cfg.duration_days = 3.0;
  cfg.round_interval_hours = 24.0;
  const auto atlas = ripe::run_atlas_campaign(cfg);
  const std::string report = study_report(dataset(), result, atlas);
  EXPECT_NE(report.find("# SNO performance study report"), std::string::npos);
  EXPECT_NE(report.find("## Identified operators"), std::string::npos);
  EXPECT_NE(report.find("## Cross-orbit summary"), std::string::npos);
  EXPECT_NE(report.find("## Starlink PoP analysis"), std::string::npos);
  EXPECT_NE(report.find("starlink"), std::string::npos);
}

TEST_F(ExportTest, StudyReportSkipsPopSectionWithoutAtlas) {
  const auto result = snoid::run_pipeline(dataset());
  const std::string report = study_report(dataset(), result, ripe::AtlasDataset{});
  EXPECT_EQ(report.find("## Starlink PoP analysis"), std::string::npos);
  EXPECT_NE(report.find("## Cross-orbit summary"), std::string::npos);
}

}  // namespace
}  // namespace satnet::io
