#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "io/csv.hpp"
#include "io/report.hpp"
#include "io/timeline_io.hpp"
#include "mlab/campaign.hpp"
#include "orbit/access.hpp"
#include "orbit/shell.hpp"
#include "orbit/timeline.hpp"
#include "snoid/pipeline.hpp"
#include "synth/world.hpp"

namespace satnet::io {
namespace {

// ------------------------------------------------------------- CsvWriter

TEST(CsvWriterTest, PlainFieldsUnquoted) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape("12.5"), "12.5");
}

TEST(CsvWriterTest, CommaTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvWriterTest, QuotesDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriterTest, NewlineQuoted) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, HeaderThenRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row({"1", "2"});
  csv.row({"3", "x,y"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n3,\"x,y\"\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvWriterTest, RowWidthEnforced) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  EXPECT_THROW(csv.row({"only one"}), std::invalid_argument);
}

TEST(CsvWriterTest, RowBeforeHeaderThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  EXPECT_THROW(csv.row({"x"}), std::logic_error);
}

TEST(CsvWriterTest, DoubleHeaderThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a"});
  EXPECT_THROW(csv.header({"a"}), std::logic_error);
}

// --------------------------------------------------------------- exports

class ExportTest : public ::testing::Test {
 protected:
  static const mlab::NdtDataset& dataset() {
    static const mlab::NdtDataset ds = [] {
      static const synth::World world;
      mlab::CampaignConfig cfg;
      cfg.volume_scale = 0.00005;
      cfg.min_tests_per_sno = 5;
      return mlab::run_campaign(world, cfg);
    }();
    return ds;
  }
};

TEST_F(ExportTest, NdtRowCountMatchesDataset) {
  std::ostringstream out;
  EXPECT_EQ(export_ndt(dataset(), out), dataset().size());
  // header + one line per record
  std::size_t lines = 0;
  for (const char c : out.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, dataset().size() + 1);
}

TEST_F(ExportTest, NdtHeaderColumns) {
  std::ostringstream out;
  export_ndt(dataset(), out);
  const std::string text = out.str();
  const std::string header = text.substr(0, text.find('\n'));
  EXPECT_NE(header.find("latency_p5_ms"), std::string::npos);
  EXPECT_NE(header.find("truth_operator"), std::string::npos);
  // 15 columns -> 14 commas.
  EXPECT_EQ(std::count(header.begin(), header.end(), ','), 14);
}

TEST_F(ExportTest, PipelineExportHasOneRowPerOperator) {
  const auto result = snoid::run_pipeline(dataset());
  std::ostringstream out;
  EXPECT_EQ(export_pipeline(result, out), result.operators.size());
  EXPECT_NE(out.str().find("starlink"), std::string::npos);
}

TEST_F(ExportTest, TracerouteExportWorks) {
  ripe::AtlasConfig cfg;
  cfg.duration_days = 3.0;
  cfg.round_interval_hours = 24.0;
  const auto atlas = ripe::run_atlas_campaign(cfg);
  std::ostringstream out;
  EXPECT_EQ(export_traceroutes(atlas, out), atlas.traceroutes.size());
  EXPECT_NE(out.str().find("cgnat_rtt_ms"), std::string::npos);
}

TEST_F(ExportTest, StudyReportContainsAllSections) {
  const auto result = snoid::run_pipeline(dataset());
  ripe::AtlasConfig cfg;
  cfg.duration_days = 3.0;
  cfg.round_interval_hours = 24.0;
  const auto atlas = ripe::run_atlas_campaign(cfg);
  const std::string report = study_report(dataset(), result, atlas);
  EXPECT_NE(report.find("# SNO performance study report"), std::string::npos);
  EXPECT_NE(report.find("## Identified operators"), std::string::npos);
  EXPECT_NE(report.find("## Cross-orbit summary"), std::string::npos);
  EXPECT_NE(report.find("## Starlink PoP analysis"), std::string::npos);
  EXPECT_NE(report.find("starlink"), std::string::npos);
}

TEST_F(ExportTest, StudyReportSkipsPopSectionWithoutAtlas) {
  const auto result = snoid::run_pipeline(dataset());
  const std::string report = study_report(dataset(), result, ripe::AtlasDataset{});
  EXPECT_EQ(report.find("## Starlink PoP analysis"), std::string::npos);
  EXPECT_NE(report.find("## Cross-orbit summary"), std::string::npos);
}

// ------------------------------------------------------- timeline files
//
// The loader's robustness contract (DESIGN.md §12): any corrupt,
// truncated, byte-swapped, or stale file is rejected with one
// diagnostic, *out stays empty, and nothing is installed — campaigns
// silently fall back to in-memory builds. Each test corrupts a specific
// header field of a valid image and asserts the matching message.

class TimelineIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orbit::EpochTimeline::clear_installed();
    orbit::set_timeline_enabled(true);
  }
  void TearDown() override {
    orbit::EpochTimeline::clear_installed();
    orbit::set_timeline_enabled(true);
  }

  /// A small but real serialized image: one Starlink snapshot covering
  /// a handful of terminals and epochs.
  static std::string valid_image() {
    static const std::string image = [] {
      const auto constellation =
          std::make_shared<const orbit::Constellation>(orbit::starlink_shells());
      const orbit::AccessNetwork net = orbit::make_starlink_access(constellation);
      std::vector<orbit::TimelineQuery> queries;
      for (const double lat : {47.61, -33.87}) {
        for (int e = 1; e <= 20; ++e) {
          queries.push_back({{lat, -122.33, 0}, 15.0 * e});
        }
      }
      orbit::EpochTimeline::ensure(net, std::move(queries), 1);
      const std::string bytes =
          serialize_timelines(orbit::EpochTimeline::installed(), "io_test stamp");
      orbit::EpochTimeline::clear_installed();
      return bytes;
    }();
    return image;
  }

  /// Parses `bytes`, expecting rejection: returns the diagnostic and
  /// asserts nothing was decoded.
  static std::string expect_rejected(std::string bytes) {
    auto backing = std::make_shared<std::string>(std::move(bytes));
    std::vector<std::shared_ptr<const orbit::EpochTimeline>> out;
    const std::string diag = parse_timelines(*backing, backing, &out);
    EXPECT_FALSE(diag.empty());
    EXPECT_TRUE(out.empty()) << diag;
    return diag;
  }
};

TEST_F(TimelineIoTest, RoundTripPreservesEverything) {
  auto backing = std::make_shared<std::string>(valid_image());
  std::vector<std::shared_ptr<const orbit::EpochTimeline>> out;
  TimelineFileInfo info;
  ASSERT_EQ(parse_timelines(*backing, backing, &out, &info), "");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(info.networks, 1u);
  EXPECT_EQ(info.bytes, backing->size());
  EXPECT_EQ(info.manifest, "io_test stamp");
  EXPECT_GT(out.front()->serving_size(), 0u);
  EXPECT_GT(out.front()->sample_size(), 0u);
  // Re-serializing the loaded snapshots reproduces the image verbatim.
  EXPECT_EQ(serialize_timelines(out, "io_test stamp"), *backing);
}

TEST_F(TimelineIoTest, BitFlipInPayloadRejected) {
  std::string bytes = valid_image();
  bytes[bytes.size() / 2] ^= 0x01;
  EXPECT_NE(expect_rejected(std::move(bytes)).find("checksum mismatch"),
            std::string::npos);
}

TEST_F(TimelineIoTest, TruncationRejected) {
  const std::string bytes = valid_image();
  // Any prefix must be rejected: mid-payload cuts fail the checksum,
  // header-sized cuts fail structural checks. Never a crash or a
  // partial decode.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{40}, std::size_t{8}}) {
    expect_rejected(bytes.substr(0, keep));
  }
  EXPECT_NE(expect_rejected(bytes.substr(0, 8)).find("truncated header"),
            std::string::npos);
}

TEST_F(TimelineIoTest, ByteSwappedFileRejected) {
  std::string bytes = valid_image();
  bytes[6] = static_cast<char>(0xFE);  // byte-order mark as a big-endian
  bytes[7] = static_cast<char>(0xFF);  // writer would have produced it
  EXPECT_NE(expect_rejected(std::move(bytes)).find("wrong endianness"),
            std::string::npos);
}

TEST_F(TimelineIoTest, FutureFormatVersionRejected) {
  std::string bytes = valid_image();
  bytes[4] = static_cast<char>(kTimelineFormatVersion + 1);
  EXPECT_NE(expect_rejected(std::move(bytes)).find("unsupported format version"),
            std::string::npos);
}

TEST_F(TimelineIoTest, StaleSchemaStampRejected) {
  std::string bytes = valid_image();
  bytes[9] ^= 0x40;  // schema hash occupies bytes 8..15
  EXPECT_NE(expect_rejected(std::move(bytes)).find("stale schema"),
            std::string::npos);
}

TEST_F(TimelineIoTest, WrongMagicRejected) {
  std::string bytes = valid_image();
  bytes[0] = 'X';
  EXPECT_NE(expect_rejected(std::move(bytes)).find("bad magic"), std::string::npos);
}

TEST_F(TimelineIoTest, LoadRejectsCorruptFileAndInstallsNothing) {
  const std::string path = ::testing::TempDir() + "/satnet_timeline_corrupt.tl";
  std::string bytes = valid_image();
  bytes[bytes.size() - 12] ^= 0x80;  // land inside the sample arrays
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const std::string diag = load_timelines(path);
  EXPECT_NE(diag.find("timeline file rejected"), std::string::npos) << diag;
  EXPECT_TRUE(orbit::EpochTimeline::installed().empty());
  std::remove(path.c_str());
}

TEST_F(TimelineIoTest, SaveLoadInstallsSnapshots) {
  const std::string path = ::testing::TempDir() + "/satnet_timeline_ok.tl";
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    const std::string bytes = valid_image();
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  TimelineFileInfo info;
  ASSERT_EQ(load_timelines(path, &info), "");
  EXPECT_EQ(info.networks, 1u);
  EXPECT_EQ(info.manifest, "io_test stamp");
  EXPECT_EQ(orbit::EpochTimeline::installed().size(), 1u);
  std::remove(path.c_str());
}

TEST_F(TimelineIoTest, MissingFileIsOneDiagnostic) {
  const std::string diag = load_timelines("/nonexistent/dir/timeline.tl");
  EXPECT_FALSE(diag.empty());
  EXPECT_TRUE(orbit::EpochTimeline::installed().empty());
}

}  // namespace
}  // namespace satnet::io
