#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "geo/geodesy.hpp"
#include "orbit/access.hpp"
#include "orbit/constellation.hpp"
#include "orbit/shell.hpp"

namespace satnet::orbit {
namespace {

std::shared_ptr<const Constellation> starlink() {
  static const auto c =
      std::make_shared<const Constellation>(starlink_shells());
  return c;
}

// ---------------------------------------------------------------- shell

TEST(ShellTest, StarlinkPeriodRoughly95Minutes) {
  EXPECT_NEAR(starlink_shell1().period_sec() / 60.0, 95.6, 1.0);
}

TEST(ShellTest, HigherAltitudeLongerPeriod) {
  EXPECT_GT(oneweb_shell().period_sec(), starlink_shell1().period_sec());
  EXPECT_GT(o3b_shell().period_sec(), oneweb_shell().period_sec());
}

TEST(ShellTest, TotalSatsMultiplies) {
  EXPECT_EQ(starlink_shell1().total_sats(), 72u * 22u);
  EXPECT_EQ(oneweb_shell().total_sats(), 18u * 36u);
}

// -------------------------------------------------------- constellation

TEST(ConstellationTest, PositionAltitudeConstant) {
  const auto c = starlink();
  for (double t : {0.0, 1000.0, 50000.0}) {
    const auto p = c->position({0, 10, 5}, t);
    EXPECT_NEAR(p.alt_km, 550.0, 1e-6);
  }
}

TEST(ConstellationTest, LatitudeBoundedByInclination) {
  const auto c = starlink();
  for (std::size_t plane = 0; plane < 72; plane += 7) {
    for (double t = 0; t < 6000; t += 313) {
      const auto p = c->position({0, plane, 3}, t);
      EXPECT_LE(std::abs(p.lat_deg), 53.5);
    }
  }
}

TEST(ConstellationTest, PolarShellReachesHighLatitudes) {
  const Constellation c(std::vector{oneweb_shell()});
  double max_lat = 0;
  for (double t = 0; t < oneweb_shell().period_sec(); t += 30) {
    max_lat = std::max(max_lat, std::abs(c.position({0, 0, 0}, t).lat_deg));
  }
  EXPECT_GT(max_lat, 80.0);
}

TEST(ConstellationTest, SatelliteMovesBetweenEpochs) {
  const auto c = starlink();
  const auto p0 = c->position({0, 0, 0}, 0.0);
  const auto p1 = c->position({0, 0, 0}, 60.0);
  // ~7.6 km/s ground track: a minute moves the satellite far.
  EXPECT_GT(geo::surface_distance_km({p0.lat_deg, p0.lon_deg, 0},
                                     {p1.lat_deg, p1.lon_deg, 0}),
            100.0);
}

TEST(ConstellationTest, PositionIsPeriodic) {
  const auto c = starlink();
  const double period = starlink_shell1().period_sec();
  const auto p0 = c->position({0, 5, 5}, 0.0);
  const auto p1 = c->position({0, 5, 5}, period);
  // After one period the satellite returns in the inertial frame; Earth
  // has rotated, so only latitude must match.
  EXPECT_NEAR(p0.lat_deg, p1.lat_deg, 0.2);
}

TEST(ConstellationTest, MidLatitudeUserSeesSatellites) {
  const auto c = starlink();
  const geo::GeoPoint seattle{47.61, -122.33, 0};
  for (double t = 0; t < 3600; t += 360) {
    EXPECT_TRUE(c->best_visible(seattle, t, 25.0).has_value()) << "t=" << t;
  }
}

TEST(ConstellationTest, VisibilityRespectsMinElevation) {
  const auto c = starlink();
  const geo::GeoPoint user{40.0, -100.0, 0};
  for (const auto& v : c->visible(user, 1234.0, 40.0)) {
    EXPECT_GE(v.elevation_deg, 40.0);
  }
}

TEST(ConstellationTest, BestVisibleIsMaxElevation) {
  const auto c = starlink();
  const geo::GeoPoint user{40.0, -100.0, 0};
  const auto all = c->visible(user, 777.0, 25.0);
  const auto best = c->best_visible(user, 777.0, 25.0);
  ASSERT_TRUE(best.has_value());
  for (const auto& v : all) EXPECT_LE(v.elevation_deg, best->elevation_deg + 1e-9);
}

TEST(ConstellationTest, EquatorialMeoInvisibleFromHighLatitude) {
  const Constellation c(std::vector{o3b_shell()});
  // O3b's equatorial orbit cannot serve 70N at a sane elevation.
  EXPECT_FALSE(c.best_visible({70.0, 10.0, 0}, 0.0, 15.0).has_value());
}

TEST(ConstellationTest, SlantRangeAtLeastAltitude) {
  const auto c = starlink();
  for (const auto& v : c->visible({47.0, -120.0, 0}, 99.0, 25.0)) {
    EXPECT_GE(v.slant_km, 549.0);
    EXPECT_LT(v.slant_km, 2600.0);  // bounded by geometry at 25 deg
  }
}

// ------------------------------------------------------------- GeoFleet

TEST(GeoFleetTest, SlotPositionIsEquatorial) {
  GeoFleet fleet;
  fleet.add_slot("test", -101.0);
  const auto p = fleet.position(0);
  EXPECT_DOUBLE_EQ(p.lat_deg, 0.0);
  EXPECT_DOUBLE_EQ(p.lon_deg, -101.0);
  EXPECT_DOUBLE_EQ(p.alt_km, geo::kGeoAltitudeKm);
}

TEST(GeoFleetTest, BestVisiblePicksNearestSlot) {
  GeoFleet fleet;
  fleet.add_slot("west", -130.0);
  fleet.add_slot("east", -60.0);
  const auto best = fleet.best_visible({40.0, -125.0, 0}, 10.0);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->id.index, 0u);
}

TEST(GeoFleetTest, InvisibleFromOppositeHemisphere) {
  GeoFleet fleet;
  fleet.add_slot("americas", -100.0);
  EXPECT_FALSE(fleet.best_visible({35.0, 139.0, 0}, 10.0).has_value());
}

// ------------------------------------------------------- access network

TEST(AccessTest, StarlinkSampleReachableAndFast) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint seattle{47.61, -122.33, 0};
  const auto s = net.sample(seattle, 1000.0);
  ASSERT_TRUE(s.reachable);
  // One-way: a few ms of radio + 12 ms scheduling + tiny backhaul.
  EXPECT_GT(s.one_way_ms, 12.0);
  EXPECT_LT(s.one_way_ms, 30.0);
  EXPECT_EQ(net.config().pops[s.pop_index].city, "seattle");
}

TEST(AccessTest, ManilaServedFromTokyo) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint manila{14.60, 120.98, 0};
  const auto s = net.sample(manila, 5000.0);
  ASSERT_TRUE(s.reachable);
  EXPECT_EQ(net.config().pops[s.pop_index].city, "tokyo");
  // The backhaul detour makes Manila roughly 2x a well-served user.
  EXPECT_GT(s.one_way_ms, 30.0);
}

TEST(AccessTest, AlaskaServedFromSeattle) {
  const auto net = make_starlink_access(starlink());
  const auto s = net.sample({61.22, -149.90, 0}, 300.0);
  ASSERT_TRUE(s.reachable);
  EXPECT_EQ(net.config().pops[s.pop_index].city, "seattle");
  EXPECT_GT(s.backhaul_ms, 10.0);  // ~2,300 km of fiber
}

TEST(AccessTest, NewZealandPopMigratesFromSydneyToAuckland) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint auckland{-36.85, 174.76, 0};
  constexpr double kDay = 86400.0;
  EXPECT_EQ(net.config().pops[net.assigned_pop(auckland, 30 * kDay)].city, "sydney");
  EXPECT_EQ(net.config().pops[net.assigned_pop(auckland, 100 * kDay)].city, "auckland");
}

TEST(AccessTest, NewZealandLatencyDropsAfterMigration) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint auckland{-36.85, 174.76, 0};
  constexpr double kDay = 86400.0;
  double before = 0, after = 0;
  int n = 0;
  for (int k = 0; k < 50; ++k) {
    const auto b = net.sample(auckland, 30 * kDay + k * 977.0);
    const auto a = net.sample(auckland, 100 * kDay + k * 977.0);
    if (!b.reachable || !a.reachable) continue;
    before += b.one_way_ms;
    after += a.one_way_ms;
    ++n;
  }
  ASSERT_GT(n, 30);
  // Paper: ~20 ms RTT reduction, i.e. ~10 ms one-way.
  EXPECT_GT(before / n - after / n, 5.0);
}

TEST(AccessTest, NetherlandsMigratesFrankfurtToLondon) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint ams{52.37, 4.90, 0};
  constexpr double kDay = 86400.0;
  EXPECT_EQ(net.config().pops[net.assigned_pop(ams, 100 * kDay)].city, "frankfurt");
  EXPECT_EQ(net.config().pops[net.assigned_pop(ams, 200 * kDay)].city, "london");
}

TEST(AccessTest, RenoFlipsToDenverAndBack) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint reno{39.53, -119.81, 0};
  constexpr double kDay = 86400.0;
  EXPECT_EQ(net.config().pops[net.assigned_pop(reno, 100 * kDay)].city, "los angeles");
  EXPECT_EQ(net.config().pops[net.assigned_pop(reno, 145 * kDay)].city, "denver");
  EXPECT_EQ(net.config().pops[net.assigned_pop(reno, 200 * kDay)].city, "los angeles");
}

TEST(AccessTest, LasVegasUnaffectedByRenoOverride) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint vegas{36.17, -115.14, 0};
  constexpr double kDay = 86400.0;
  EXPECT_EQ(net.config().pops[net.assigned_pop(vegas, 145 * kDay)].city, "los angeles");
}

TEST(AccessTest, GeoAccessLatencyNearTheoreticalFloor) {
  const auto net = make_geo_access("denver", -101.0, 45.0);
  const auto s = net.sample({39.0, -98.0, 0}, 0.0);
  ASSERT_TRUE(s.reachable);
  // One-way: ~125 ms up + ~120 ms down + 45 ms scheduling.
  EXPECT_GT(s.one_way_ms, 250.0);
  EXPECT_LT(s.one_way_ms, 350.0);
}

TEST(AccessTest, GeoHasNoHandoffs) {
  const auto net = make_geo_access("denver", -101.0, 45.0);
  for (double t = 0; t < 900; t += 90) {
    EXPECT_FALSE(net.sample_with_handoff({39.0, -98.0, 0}, t).handoff);
  }
}

TEST(AccessTest, LeoHandoffsOccurOverTime) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint user{47.0, -122.0, 0};
  int handoffs = 0, samples = 0;
  for (double t = 15; t < 3600 * 3; t += 15) {
    const auto s = net.sample_with_handoff(user, t);
    if (!s.reachable) continue;
    ++samples;
    if (s.handoff) ++handoffs;
  }
  ASSERT_GT(samples, 500);
  EXPECT_GT(handoffs, 10);              // the constellation does move
  EXPECT_LT(handoffs, samples * 0.75);  // but most epochs keep the satellite
}

TEST(AccessTest, ServingSatelliteStableWithinEpoch) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint user{47.0, -122.0, 0};
  const auto a = net.sample(user, 30.0);
  const auto b = net.sample(user, 44.9);  // same 15 s epoch
  ASSERT_TRUE(a.reachable);
  ASSERT_TRUE(b.reachable);
  EXPECT_TRUE(*a.serving_sat == *b.serving_sat);
}

TEST(AccessTest, FloorExcludesScheduling) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint user{47.0, -122.0, 0};
  const auto s = net.sample(user, 60.0);
  ASSERT_TRUE(s.reachable);
  EXPECT_NEAR(net.floor_one_way_ms(user, 60.0), s.one_way_ms - s.scheduling_ms, 1e-9);
}

TEST(AccessTest, OneWebEuropeanUserBackhaulsToUs) {
  const auto ow = std::make_shared<const Constellation>(std::vector{oneweb_shell()});
  const auto net = make_oneweb_access(ow);
  const auto s = net.sample({51.5, -0.1, 0}, 120.0);
  ASSERT_TRUE(s.reachable);
  EXPECT_EQ(net.config().pops[s.pop_index].country, "US");
  EXPECT_GT(s.backhaul_ms, 20.0);  // transatlantic fiber
}

TEST(AccessTest, ConstructionValidation) {
  EXPECT_THROW(AccessNetwork(AccessConfig{}, nullptr), std::invalid_argument);
  AccessConfig geo_cfg;
  geo_cfg.orbit = OrbitClass::geo;
  EXPECT_THROW(AccessNetwork(geo_cfg, GeoFleet{}), std::invalid_argument);
}

TEST(HandoffStatsTest, StarlinkDwellTimesAreShortMinutes) {
  const auto net = make_starlink_access(starlink());
  const auto stats = measure_handoffs(net, {47.0, -122.0, 0}, 0.0, 3 * 3600.0);
  EXPECT_GT(stats.handoffs, 10u);
  // Serving satellites persist for tens of seconds to a few minutes.
  EXPECT_GT(stats.mean_dwell_sec, 15.0);
  EXPECT_LT(stats.mean_dwell_sec, 600.0);
  EXPECT_LT(stats.outage_fraction, 0.05);
}

TEST(HandoffStatsTest, MeoDwellsLongerThanLeo) {
  const auto leo = make_starlink_access(starlink());
  const auto meo = make_o3b_access(
      std::make_shared<const Constellation>(std::vector{o3b_shell()}));
  // LEO terminal in Kansas (dense gateway coverage); MEO terminal near
  // Lima, inside O3b's equatorial footprint and gateway range.
  const auto l = measure_handoffs(leo, {39.0, -98.0, 0}, 0.0, 4 * 3600.0);
  const auto m = measure_handoffs(meo, {-12.0, -77.0, 0}, 0.0, 4 * 3600.0);
  ASSERT_GT(l.handoffs, 0u);
  ASSERT_GT(m.epochs, 0u);
  EXPECT_GT(m.mean_dwell_sec, l.mean_dwell_sec);
}

TEST(HandoffStatsTest, GeoNeverHandsOff) {
  const auto net = make_geo_access("denver", -101.0, 45.0);
  const auto stats = measure_handoffs(net, {39.0, -98.0, 0}, 0.0, 3600.0);
  EXPECT_EQ(stats.epochs, 0u);  // no reconfiguration epochs at all
  EXPECT_EQ(stats.handoffs, 0u);
}

// ------------------------------------------------- parameterized sweeps

class VisibilityProperty : public ::testing::TestWithParam<int> {};

TEST_P(VisibilityProperty, StarlinkServiceAreaAlwaysCovered) {
  // Any mid-latitude point on Earth sees a Starlink satellite at any time.
  const auto c = starlink();
  const double lat = -50.0 + GetParam() * 10.0;
  for (double lon = -180; lon < 180; lon += 60) {
    const auto v = c->best_visible({lat, lon, 0}, GetParam() * 733.0, 25.0);
    EXPECT_TRUE(v.has_value()) << "lat=" << lat << " lon=" << lon;
  }
}

INSTANTIATE_TEST_SUITE_P(Latitudes, VisibilityProperty, ::testing::Range(0, 11));

class GeoElevationProperty : public ::testing::TestWithParam<int> {};

TEST_P(GeoElevationProperty, DelayGrowsWithUserLatitude) {
  const auto net = make_geo_access("denver", -101.0, 45.0);
  const double lat_low = 5.0 * GetParam();
  const double lat_high = lat_low + 5.0;
  const auto a = net.sample({lat_low, -101.0, 0}, 0.0);
  const auto b = net.sample({lat_high, -101.0, 0}, 0.0);
  if (a.reachable && b.reachable) {
    EXPECT_LE(a.up_ms, b.up_ms + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Latitudes, GeoElevationProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace satnet::orbit
