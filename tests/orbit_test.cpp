#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>

#include "fault/hook.hpp"
#include "fault/plan.hpp"
#include "geo/geodesy.hpp"
#include "orbit/access.hpp"
#include "orbit/access_index.hpp"
#include "orbit/constellation.hpp"
#include "orbit/shell.hpp"

namespace satnet::orbit {
namespace {

std::shared_ptr<const Constellation> starlink() {
  static const auto c =
      std::make_shared<const Constellation>(starlink_shells());
  return c;
}

// ---------------------------------------------------------------- shell

TEST(ShellTest, StarlinkPeriodRoughly95Minutes) {
  EXPECT_NEAR(starlink_shell1().period_sec() / 60.0, 95.6, 1.0);
}

TEST(ShellTest, HigherAltitudeLongerPeriod) {
  EXPECT_GT(oneweb_shell().period_sec(), starlink_shell1().period_sec());
  EXPECT_GT(o3b_shell().period_sec(), oneweb_shell().period_sec());
}

TEST(ShellTest, TotalSatsMultiplies) {
  EXPECT_EQ(starlink_shell1().total_sats(), 72u * 22u);
  EXPECT_EQ(oneweb_shell().total_sats(), 18u * 36u);
}

// -------------------------------------------------------- constellation

TEST(ConstellationTest, PositionAltitudeConstant) {
  const auto c = starlink();
  for (double t : {0.0, 1000.0, 50000.0}) {
    const auto p = c->position({0, 10, 5}, t);
    EXPECT_NEAR(p.alt_km, 550.0, 1e-6);
  }
}

TEST(ConstellationTest, LatitudeBoundedByInclination) {
  const auto c = starlink();
  for (std::size_t plane = 0; plane < 72; plane += 7) {
    for (double t = 0; t < 6000; t += 313) {
      const auto p = c->position({0, plane, 3}, t);
      EXPECT_LE(std::abs(p.lat_deg), 53.5);
    }
  }
}

TEST(ConstellationTest, PolarShellReachesHighLatitudes) {
  const Constellation c(std::vector{oneweb_shell()});
  double max_lat = 0;
  for (double t = 0; t < oneweb_shell().period_sec(); t += 30) {
    max_lat = std::max(max_lat, std::abs(c.position({0, 0, 0}, t).lat_deg));
  }
  EXPECT_GT(max_lat, 80.0);
}

TEST(ConstellationTest, SatelliteMovesBetweenEpochs) {
  const auto c = starlink();
  const auto p0 = c->position({0, 0, 0}, 0.0);
  const auto p1 = c->position({0, 0, 0}, 60.0);
  // ~7.6 km/s ground track: a minute moves the satellite far.
  EXPECT_GT(geo::surface_distance_km({p0.lat_deg, p0.lon_deg, 0},
                                     {p1.lat_deg, p1.lon_deg, 0}),
            100.0);
}

TEST(ConstellationTest, PositionIsPeriodic) {
  const auto c = starlink();
  const double period = starlink_shell1().period_sec();
  const auto p0 = c->position({0, 5, 5}, 0.0);
  const auto p1 = c->position({0, 5, 5}, period);
  // After one period the satellite returns in the inertial frame; Earth
  // has rotated, so only latitude must match.
  EXPECT_NEAR(p0.lat_deg, p1.lat_deg, 0.2);
}

TEST(ConstellationTest, MidLatitudeUserSeesSatellites) {
  const auto c = starlink();
  const geo::GeoPoint seattle{47.61, -122.33, 0};
  for (double t = 0; t < 3600; t += 360) {
    EXPECT_TRUE(c->best_visible(seattle, t, 25.0).has_value()) << "t=" << t;
  }
}

TEST(ConstellationTest, VisibilityRespectsMinElevation) {
  const auto c = starlink();
  const geo::GeoPoint user{40.0, -100.0, 0};
  for (const auto& v : c->visible(user, 1234.0, 40.0)) {
    EXPECT_GE(v.elevation_deg, 40.0);
  }
}

TEST(ConstellationTest, BestVisibleIsMaxElevation) {
  const auto c = starlink();
  const geo::GeoPoint user{40.0, -100.0, 0};
  const auto all = c->visible(user, 777.0, 25.0);
  const auto best = c->best_visible(user, 777.0, 25.0);
  ASSERT_TRUE(best.has_value());
  for (const auto& v : all) EXPECT_LE(v.elevation_deg, best->elevation_deg + 1e-9);
}

TEST(ConstellationTest, EquatorialMeoInvisibleFromHighLatitude) {
  const Constellation c(std::vector{o3b_shell()});
  // O3b's equatorial orbit cannot serve 70N at a sane elevation.
  EXPECT_FALSE(c.best_visible({70.0, 10.0, 0}, 0.0, 15.0).has_value());
}

TEST(ConstellationTest, SlantRangeAtLeastAltitude) {
  const auto c = starlink();
  for (const auto& v : c->visible({47.0, -120.0, 0}, 99.0, 25.0)) {
    EXPECT_GE(v.slant_km, 549.0);
    EXPECT_LT(v.slant_km, 2600.0);  // bounded by geometry at 25 deg
  }
}

// ------------------------------------------------------------- GeoFleet

TEST(GeoFleetTest, SlotPositionIsEquatorial) {
  GeoFleet fleet;
  fleet.add_slot("test", -101.0);
  const auto p = fleet.position(0);
  EXPECT_DOUBLE_EQ(p.lat_deg, 0.0);
  EXPECT_DOUBLE_EQ(p.lon_deg, -101.0);
  EXPECT_DOUBLE_EQ(p.alt_km, geo::kGeoAltitudeKm);
}

TEST(GeoFleetTest, BestVisiblePicksNearestSlot) {
  GeoFleet fleet;
  fleet.add_slot("west", -130.0);
  fleet.add_slot("east", -60.0);
  const auto best = fleet.best_visible({40.0, -125.0, 0}, 10.0);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->id.index, 0u);
}

TEST(GeoFleetTest, InvisibleFromOppositeHemisphere) {
  GeoFleet fleet;
  fleet.add_slot("americas", -100.0);
  EXPECT_FALSE(fleet.best_visible({35.0, 139.0, 0}, 10.0).has_value());
}

// ------------------------------------------------------- access network

TEST(AccessTest, StarlinkSampleReachableAndFast) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint seattle{47.61, -122.33, 0};
  const auto s = net.sample(seattle, 1000.0);
  ASSERT_TRUE(s.reachable);
  // One-way: a few ms of radio + 12 ms scheduling + tiny backhaul.
  EXPECT_GT(s.one_way_ms, 12.0);
  EXPECT_LT(s.one_way_ms, 30.0);
  EXPECT_EQ(net.config().pops[s.pop_index].city, "seattle");
}

TEST(AccessTest, ManilaServedFromTokyo) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint manila{14.60, 120.98, 0};
  const auto s = net.sample(manila, 5000.0);
  ASSERT_TRUE(s.reachable);
  EXPECT_EQ(net.config().pops[s.pop_index].city, "tokyo");
  // The backhaul detour makes Manila roughly 2x a well-served user.
  EXPECT_GT(s.one_way_ms, 30.0);
}

TEST(AccessTest, AlaskaServedFromSeattle) {
  const auto net = make_starlink_access(starlink());
  const auto s = net.sample({61.22, -149.90, 0}, 300.0);
  ASSERT_TRUE(s.reachable);
  EXPECT_EQ(net.config().pops[s.pop_index].city, "seattle");
  EXPECT_GT(s.backhaul_ms, 10.0);  // ~2,300 km of fiber
}

TEST(AccessTest, NewZealandPopMigratesFromSydneyToAuckland) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint auckland{-36.85, 174.76, 0};
  constexpr double kDay = 86400.0;
  EXPECT_EQ(net.config().pops[net.assigned_pop(auckland, 30 * kDay)].city, "sydney");
  EXPECT_EQ(net.config().pops[net.assigned_pop(auckland, 100 * kDay)].city, "auckland");
}

TEST(AccessTest, NewZealandLatencyDropsAfterMigration) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint auckland{-36.85, 174.76, 0};
  constexpr double kDay = 86400.0;
  double before = 0, after = 0;
  int n = 0;
  for (int k = 0; k < 50; ++k) {
    const auto b = net.sample(auckland, 30 * kDay + k * 977.0);
    const auto a = net.sample(auckland, 100 * kDay + k * 977.0);
    if (!b.reachable || !a.reachable) continue;
    before += b.one_way_ms;
    after += a.one_way_ms;
    ++n;
  }
  ASSERT_GT(n, 30);
  // Paper: ~20 ms RTT reduction, i.e. ~10 ms one-way.
  EXPECT_GT(before / n - after / n, 5.0);
}

TEST(AccessTest, NetherlandsMigratesFrankfurtToLondon) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint ams{52.37, 4.90, 0};
  constexpr double kDay = 86400.0;
  EXPECT_EQ(net.config().pops[net.assigned_pop(ams, 100 * kDay)].city, "frankfurt");
  EXPECT_EQ(net.config().pops[net.assigned_pop(ams, 200 * kDay)].city, "london");
}

TEST(AccessTest, RenoFlipsToDenverAndBack) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint reno{39.53, -119.81, 0};
  constexpr double kDay = 86400.0;
  EXPECT_EQ(net.config().pops[net.assigned_pop(reno, 100 * kDay)].city, "los angeles");
  EXPECT_EQ(net.config().pops[net.assigned_pop(reno, 145 * kDay)].city, "denver");
  EXPECT_EQ(net.config().pops[net.assigned_pop(reno, 200 * kDay)].city, "los angeles");
}

TEST(AccessTest, LasVegasUnaffectedByRenoOverride) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint vegas{36.17, -115.14, 0};
  constexpr double kDay = 86400.0;
  EXPECT_EQ(net.config().pops[net.assigned_pop(vegas, 145 * kDay)].city, "los angeles");
}

TEST(AccessTest, GeoAccessLatencyNearTheoreticalFloor) {
  const auto net = make_geo_access("denver", -101.0, 45.0);
  const auto s = net.sample({39.0, -98.0, 0}, 0.0);
  ASSERT_TRUE(s.reachable);
  // One-way: ~125 ms up + ~120 ms down + 45 ms scheduling.
  EXPECT_GT(s.one_way_ms, 250.0);
  EXPECT_LT(s.one_way_ms, 350.0);
}

TEST(AccessTest, GeoHasNoHandoffs) {
  const auto net = make_geo_access("denver", -101.0, 45.0);
  for (double t = 0; t < 900; t += 90) {
    EXPECT_FALSE(net.sample_with_handoff({39.0, -98.0, 0}, t).handoff);
  }
}

TEST(AccessTest, LeoHandoffsOccurOverTime) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint user{47.0, -122.0, 0};
  int handoffs = 0, samples = 0;
  for (double t = 15; t < 3600 * 3; t += 15) {
    const auto s = net.sample_with_handoff(user, t);
    if (!s.reachable) continue;
    ++samples;
    if (s.handoff) ++handoffs;
  }
  ASSERT_GT(samples, 500);
  EXPECT_GT(handoffs, 10);              // the constellation does move
  EXPECT_LT(handoffs, samples * 0.75);  // but most epochs keep the satellite
}

TEST(AccessTest, ServingSatelliteStableWithinEpoch) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint user{47.0, -122.0, 0};
  const auto a = net.sample(user, 30.0);
  const auto b = net.sample(user, 44.9);  // same 15 s epoch
  ASSERT_TRUE(a.reachable);
  ASSERT_TRUE(b.reachable);
  EXPECT_TRUE(*a.serving_sat == *b.serving_sat);
}

TEST(AccessTest, FloorExcludesScheduling) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint user{47.0, -122.0, 0};
  const auto s = net.sample(user, 60.0);
  ASSERT_TRUE(s.reachable);
  EXPECT_NEAR(net.floor_one_way_ms(user, 60.0), s.one_way_ms - s.scheduling_ms, 1e-9);
}

TEST(AccessTest, OneWebEuropeanUserBackhaulsToUs) {
  const auto ow = std::make_shared<const Constellation>(std::vector{oneweb_shell()});
  const auto net = make_oneweb_access(ow);
  const auto s = net.sample({51.5, -0.1, 0}, 120.0);
  ASSERT_TRUE(s.reachable);
  EXPECT_EQ(net.config().pops[s.pop_index].country, "US");
  EXPECT_GT(s.backhaul_ms, 20.0);  // transatlantic fiber
}

TEST(AccessTest, ConstructionValidation) {
  EXPECT_THROW(AccessNetwork(AccessConfig{}, nullptr), std::invalid_argument);
  AccessConfig geo_cfg;
  geo_cfg.orbit = OrbitClass::geo;
  EXPECT_THROW(AccessNetwork(geo_cfg, GeoFleet{}), std::invalid_argument);
}

TEST(HandoffStatsTest, StarlinkDwellTimesAreShortMinutes) {
  const auto net = make_starlink_access(starlink());
  const auto stats = measure_handoffs(net, {47.0, -122.0, 0}, 0.0, 3 * 3600.0);
  EXPECT_GT(stats.handoffs, 10u);
  // Serving satellites persist for tens of seconds to a few minutes.
  EXPECT_GT(stats.mean_dwell_sec, 15.0);
  EXPECT_LT(stats.mean_dwell_sec, 600.0);
  EXPECT_LT(stats.outage_fraction, 0.05);
}

TEST(HandoffStatsTest, MeoDwellsLongerThanLeo) {
  const auto leo = make_starlink_access(starlink());
  const auto meo = make_o3b_access(
      std::make_shared<const Constellation>(std::vector{o3b_shell()}));
  // LEO terminal in Kansas (dense gateway coverage); MEO terminal near
  // Lima, inside O3b's equatorial footprint and gateway range.
  const auto l = measure_handoffs(leo, {39.0, -98.0, 0}, 0.0, 4 * 3600.0);
  const auto m = measure_handoffs(meo, {-12.0, -77.0, 0}, 0.0, 4 * 3600.0);
  ASSERT_GT(l.handoffs, 0u);
  ASSERT_GT(m.epochs, 0u);
  EXPECT_GT(m.mean_dwell_sec, l.mean_dwell_sec);
}

TEST(HandoffStatsTest, GeoNeverHandsOff) {
  const auto net = make_geo_access("denver", -101.0, 45.0);
  const auto stats = measure_handoffs(net, {39.0, -98.0, 0}, 0.0, 3600.0);
  EXPECT_EQ(stats.epochs, 0u);  // no reconfiguration epochs at all
  EXPECT_EQ(stats.handoffs, 0u);
}

// The loop measure_handoffs used before PR 5: `t += interval`
// accumulates one rounding error per epoch, so the epoch count depends
// on the magnitude of t_start_sec. Reproduced here as plain arithmetic
// to document the failure the integer-stepping fix removes.
std::size_t old_accumulation_loop_epochs(double t_start, double duration,
                                         double interval) {
  std::size_t n = 0;
  for (double t = t_start; t < t_start + duration; t += interval) ++n;
  return n;
}

/// Minimal 0.1 s-interval MEO network over the 20-satellite O3b shell —
/// cheap enough to sample a thousand epochs per measure_handoffs call.
AccessNetwork make_fast_epoch_net() {
  AccessConfig cfg;
  cfg.name = "fast-epoch";
  cfg.orbit = OrbitClass::meo;
  cfg.min_elevation_deg = 15.0;
  cfg.reconfig_interval_sec = 0.1;  // deliberately not representable in binary
  const geo::GeoPoint lima{-12.05, -77.05, 0};
  cfg.pops = {Pop{"p0", "lima", "PE", lima}};
  cfg.gateways = {Gateway{"lima", lima, 0}};
  return AccessNetwork(std::move(cfg),
                       std::make_shared<const Constellation>(std::vector{o3b_shell()}));
}

TEST(HandoffStatsTest, OldAccumulationLoopDriftedWithStartOffset) {
  // With a non-representable 0.1 s interval the old loop gains an epoch
  // at t_start = 0 and sheds it again by t_start = 1e9 — the count was a
  // function of where the window started, not how long it was.
  EXPECT_EQ(old_accumulation_loop_epochs(0.0, 100.0, 0.1), 1001u);
  EXPECT_EQ(old_accumulation_loop_epochs(1e9, 100.0, 0.1), 1000u);
  // Even the stock 15 s Starlink interval loses epochs once t_start is
  // large enough that t + 15 rounds: 225 instead of 240.
  EXPECT_EQ(old_accumulation_loop_epochs(0.0, 3600.0, 15.0), 240u);
  EXPECT_EQ(old_accumulation_loop_epochs(1e16, 3600.0, 15.0), 225u);
}

TEST(HandoffStatsTest, EpochCountInvariantToStartOffset) {
  // Post-fix contract: exactly floor(duration / interval) epochs at any
  // start offset, including ones where the old loop drifted.
  const auto net = make_fast_epoch_net();
  for (const double t_start : {0.0, 1e7, 1e9}) {
    const auto stats = measure_handoffs(net, {-12.0, -77.0, 0}, t_start, 100.0);
    EXPECT_EQ(stats.epochs, 1000u) << "t_start=" << t_start;
  }
  const auto leo = make_starlink_access(starlink());
  for (const double t_start : {0.0, 1e7}) {
    const auto stats = measure_handoffs(leo, {47.0, -122.0, 0}, t_start, 3600.0);
    EXPECT_EQ(stats.epochs, 240u) << "t_start=" << t_start;
  }
}

TEST(HandoffStatsTest, FinalDwellIsCensoredNotCompleted) {
  // A window shorter than one natural dwell observes no handoff at all:
  // the only dwell is cut off by the window edge. It must be reported as
  // censored, not averaged in as if a handoff had ended it (that is what
  // biased mean_dwell_sec low for short windows).
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint user{47.0, -122.0, 0};
  const auto stats = measure_handoffs(net, user, 45.0, 30.0);
  ASSERT_EQ(stats.epochs, 2u);
  ASSERT_EQ(stats.handoffs, 0u);  // 30 s < one Starlink dwell
  EXPECT_EQ(stats.censored, 1u);
  EXPECT_DOUBLE_EQ(stats.censored_dwell_sec, 30.0);
  EXPECT_DOUBLE_EQ(stats.mean_dwell_sec, 0.0);  // no *completed* dwells
  EXPECT_DOUBLE_EQ(stats.max_dwell_sec, 0.0);
}

// ---------------------------------------------------------- access index

/// Bitwise equality for doubles: the access index claims byte-identical
/// results, so tests compare representations, not tolerances.
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool same_sample(const AccessSample& a, const AccessSample& b) {
  return a.reachable == b.reachable && same_bits(a.one_way_ms, b.one_way_ms) &&
         same_bits(a.up_ms, b.up_ms) && same_bits(a.down_ms, b.down_ms) &&
         same_bits(a.backhaul_ms, b.backhaul_ms) &&
         same_bits(a.scheduling_ms, b.scheduling_ms) &&
         a.serving_sat == b.serving_sat && a.pop_index == b.pop_index &&
         a.gateway_index == b.gateway_index && a.handoff == b.handoff;
}

/// RAII toggle so a test cannot leak a disabled cache into later tests.
struct ScopedCacheDisabled {
  ScopedCacheDisabled() { set_access_cache_enabled(false); }
  ~ScopedCacheDisabled() { set_access_cache_enabled(true); }
};

TEST(AccessIndexTest, CandidateListIsSupersetOfVisibleSet) {
  const auto c = starlink();
  const auto net = make_starlink_access(c);
  ASSERT_NE(net.access_index(), nullptr);
  for (const double lat : {47.3, -36.9, 61.2}) {
    for (double t = 0; t < 600.0; t += 45.0) {
      const geo::GeoPoint user{lat, -122.3, 0};
      const auto cands = net.access_index()->candidates_for_test(user, t);
      const auto visible = c->visible(user, t, net.config().min_elevation_deg);
      for (const auto& v : visible) {
        EXPECT_TRUE(std::find(cands.begin(), cands.end(), v.id) != cands.end())
            << "lat=" << lat << " t=" << t;
      }
      // The gate is tight enough to be useful, not a degenerate "all".
      EXPECT_LT(cands.size(), c->total_sats() / 10);
    }
  }
}

TEST(AccessIndexTest, ServingMatchesFullSweepBitForBit) {
  const auto c = starlink();
  const auto net = make_starlink_access(c);
  const double min_elev = net.config().min_elevation_deg;
  for (const double lat : {47.61, 21.3, -33.87}) {
    for (const double lon : {-122.33, -157.85, 151.2}) {
      for (double epoch = 0; epoch < 900.0; epoch += 15.0) {
        const geo::GeoPoint user{lat, lon, 0};
        const auto via_index = net.access_index()->serving(user, epoch);
        const auto via_sweep = c->best_visible(user, epoch, min_elev);
        ASSERT_EQ(via_index.has_value(), via_sweep.has_value());
        if (!via_index) continue;
        EXPECT_TRUE(via_index->id == via_sweep->id);
        EXPECT_TRUE(same_bits(via_index->elevation_deg, via_sweep->elevation_deg));
        EXPECT_TRUE(same_bits(via_index->slant_km, via_sweep->slant_km));
        EXPECT_TRUE(same_bits(via_index->position.lat_deg, via_sweep->position.lat_deg));
        EXPECT_TRUE(same_bits(via_index->position.lon_deg, via_sweep->position.lon_deg));
      }
    }
  }
}

TEST(AccessIndexTest, SamplesByteIdenticalCacheOnAndOff) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint user{47.61, -122.33, 0};
  for (double t = 0; t < 1800.0; t += 7.5) {
    const AccessSample cached = net.sample_with_handoff(user, t);
    AccessSample uncached;
    {
      ScopedCacheDisabled off;
      uncached = net.sample_with_handoff(user, t);
    }
    EXPECT_TRUE(same_sample(cached, uncached)) << "t=" << t;
  }
}

TEST(AccessIndexTest, FaultWindowsPartitionErasWithoutFlushingIndex) {
  const auto net = make_starlink_access(starlink());
  const geo::GeoPoint user{47.61, -122.33, 0};  // Seattle: homed to the
                                                // gateway the plan kills
  fault::FaultEvent outage;
  outage.kind = fault::EventKind::gateway_outage;
  outage.target = "seattle";
  outage.t_start_sec = 1000.0;  // deliberately mid-epoch: [990, 1005)
  outage.t_end_sec = 2000.0;
  fault::ScopedHook hook(fault::FaultPlan{{outage}});

  // t = 995 and t = 1002 share the same reconfiguration epoch (990) and
  // the same serving satellite, but straddle the outage edge. The era
  // component of the memo key splits them, so warming the memo before
  // the outage cannot replay a dead gateway into the window.
  const AccessSample before = net.sample(user, 995.0);
  const AccessSample inside = net.sample(user, 1002.0);
  ASSERT_TRUE(before.reachable);
  ASSERT_TRUE(inside.reachable);
  EXPECT_TRUE(*before.serving_sat == *inside.serving_sat);
  EXPECT_NE(before.gateway_index, inside.gateway_index);
  // And both eras must agree with the uncached computation exactly.
  ScopedCacheDisabled off;
  EXPECT_TRUE(same_sample(before, net.sample(user, 995.0)));
  EXPECT_TRUE(same_sample(inside, net.sample(user, 1002.0)));
}

// ------------------------------------------------- parameterized sweeps

class VisibilityProperty : public ::testing::TestWithParam<int> {};

TEST_P(VisibilityProperty, StarlinkServiceAreaAlwaysCovered) {
  // Any mid-latitude point on Earth sees a Starlink satellite at any time.
  const auto c = starlink();
  const double lat = -50.0 + GetParam() * 10.0;
  for (double lon = -180; lon < 180; lon += 60) {
    const auto v = c->best_visible({lat, lon, 0}, GetParam() * 733.0, 25.0);
    EXPECT_TRUE(v.has_value()) << "lat=" << lat << " lon=" << lon;
  }
}

INSTANTIATE_TEST_SUITE_P(Latitudes, VisibilityProperty, ::testing::Range(0, 11));

class GeoElevationProperty : public ::testing::TestWithParam<int> {};

TEST_P(GeoElevationProperty, DelayGrowsWithUserLatitude) {
  const auto net = make_geo_access("denver", -101.0, 45.0);
  const double lat_low = 5.0 * GetParam();
  const double lat_high = lat_low + 5.0;
  const auto a = net.sample({lat_low, -101.0, 0}, 0.0);
  const auto b = net.sample({lat_high, -101.0, 0}, 0.0);
  if (a.reachable && b.reachable) {
    EXPECT_LE(a.up_ms, b.up_ms + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Latitudes, GeoElevationProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace satnet::orbit
