#include <gtest/gtest.h>

#include <set>

#include "bgp/sno_world.hpp"
#include "mlab/campaign.hpp"
#include "snoid/analysis.hpp"
#include "snoid/pipeline.hpp"
#include "snoid/pop_analysis.hpp"
#include "snoid/validation.hpp"
#include "synth/world.hpp"

namespace satnet::snoid {
namespace {

const synth::World& world() {
  static const synth::World w;
  return w;
}

const mlab::NdtDataset& dataset() {
  static const mlab::NdtDataset ds = [] {
    mlab::CampaignConfig cfg;
    cfg.volume_scale = 0.0005;
    cfg.min_tests_per_sno = 25;
    return mlab::run_campaign(world(), cfg);
  }();
  return ds;
}

const PipelineResult& result() {
  static const PipelineResult r = run_pipeline(dataset());
  return r;
}

const OperatorResult& op(const std::string& name) {
  for (const auto& o : result().operators) {
    if (o.name == name) return o;
  }
  throw std::out_of_range(name);
}

// ------------------------------------------------------------ validation

TEST(ValidationTest, CleanGeoAsn) {
  stats::Rng rng(1);
  std::vector<double> lat;
  for (int i = 0; i < 200; ++i) lat.push_back(rng.normal(650, 20));
  const TechWindow geo{430.0, 1e9, 0, 0};
  const auto v = classify_asn(1, lat, geo);
  EXPECT_EQ(v.cls, AsnClass::clean);
  EXPECT_NEAR(v.main_peak_ms, 650, 30);
}

TEST(ValidationTest, TerrestrialAsnIncompatibleWithLeo) {
  stats::Rng rng(2);
  std::vector<double> lat;
  for (int i = 0; i < 400; ++i) lat.push_back(rng.normal(25, 6));
  const TechWindow leo{35.0, 320.0, 0, 0};
  EXPECT_EQ(classify_asn(27277, lat, leo).cls, AsnClass::incompatible);
}

TEST(ValidationTest, MixedAsnDetected) {
  stats::Rng rng(3);
  std::vector<double> lat;
  for (int i = 0; i < 200; ++i) lat.push_back(rng.normal(660, 20));
  for (int i = 0; i < 100; ++i) lat.push_back(rng.normal(28, 6));
  const TechWindow geo{430.0, 1e9, 0, 0};
  EXPECT_EQ(classify_asn(10538, lat, geo).cls, AsnClass::mixed);
}

TEST(ValidationTest, FewTestsIsNoData) {
  const std::vector<double> lat{600, 610, 620};
  const TechWindow geo{430.0, 1e9, 0, 0};
  EXPECT_EQ(classify_asn(1, lat, geo, 10).cls, AsnClass::no_data);
}

TEST(ValidationTest, MultiOrbitWindowAcceptsBothModes) {
  stats::Rng rng(4);
  std::vector<double> lat;
  for (int i = 0; i < 150; ++i) lat.push_back(rng.normal(230, 15));  // MEO
  for (int i = 0; i < 150; ++i) lat.push_back(rng.normal(660, 25));  // GEO
  TechWindow hybrid{180.0, 480.0, 430.0, 1e9};
  const auto v = classify_asn(201554, lat, hybrid);
  EXPECT_EQ(v.cls, AsnClass::clean);
  EXPECT_TRUE(v.multimodal);
}

TEST(ValidationTest, RegionalModesWithinWindowStayClean) {
  // OneWeb-style: several peaks, all inside the LEO window.
  stats::Rng rng(5);
  std::vector<double> lat;
  for (int i = 0; i < 150; ++i) lat.push_back(rng.normal(70, 8));
  for (int i = 0; i < 150; ++i) lat.push_back(rng.normal(150, 12));
  const TechWindow leo{35.0, 320.0, 0, 0};
  EXPECT_EQ(classify_asn(800, lat, leo).cls, AsnClass::clean);
}

// -------------------------------------------------------------- pipeline

TEST(PipelineTest, EighteenOperatorsIdentified) {
  EXPECT_EQ(result().identified_operators, 18u);  // the paper's headline
}

TEST(PipelineTest, CurationDropsLookalikes) {
  // 41 genuine SNOs curated (Table 3; 18 of them with M-Lab data), all
  // false positives removed.
  EXPECT_EQ(result().curated_operators, 41u);
  for (const auto& o : result().operators) {
    EXPECT_EQ(o.name.find("cable"), std::string::npos);
    EXPECT_EQ(o.name.find("teleport"), std::string::npos);
  }
}

TEST(PipelineTest, HeSearchContributesAsns) {
  EXPECT_GE(result().he_added_asns, 3u);  // Starlink x2 + Viasat at least
}

TEST(PipelineTest, StarlinkCorporateAsnRejected) {
  const auto& starlink = op("starlink");
  bool corporate_checked = false;
  for (const auto& v : starlink.asn_verdicts) {
    if (v.asn == bgp::kStarlinkCorporate) {
      EXPECT_EQ(v.cls, AsnClass::incompatible);
      corporate_checked = true;
    }
    if (v.asn == bgp::kStarlink) {
      EXPECT_EQ(v.cls, AsnClass::clean);
    }
  }
  EXPECT_TRUE(corporate_checked);
  // No corporate (terrestrial) test retained.
  for (const std::size_t i : starlink.retained) {
    EXPECT_NE(dataset().records()[i].asn, bgp::kStarlinkCorporate);
  }
}

TEST(PipelineTest, TelAlaskaMixedAsnGoesToPrefixFiltering) {
  const auto& tel = op("telalaska");
  ASSERT_EQ(tel.asn_verdicts.size(), 1u);
  EXPECT_EQ(tel.asn_verdicts[0].cls, AsnClass::mixed);
  EXPECT_FALSE(tel.retained.empty());
}

TEST(PipelineTest, StrictPrefixesAllAboveThreshold) {
  for (const auto& o : result().operators) {
    for (const auto& p : o.prefixes) {
      if (!p.retained_strict) continue;
      EXPECT_GE(p.n_tests, 10u);
      EXPECT_GT(p.min_latency_ms, 200.0);
    }
  }
}

TEST(PipelineTest, RelaxationNeverLowersBelowStrictMin) {
  for (const auto& o : result().operators) {
    if (!o.covered_by_strict) continue;
    for (const std::size_t i : o.retained) {
      const auto& rec = dataset().records()[i];
      const bool meo_ok = o.multi_orbit && rec.latency_p5_ms >= 180.0;
      EXPECT_TRUE(rec.latency_p5_ms >= o.relax_threshold_ms || meo_ok);
    }
  }
}

TEST(PipelineTest, UncoveredOperatorsUseFallback) {
  const double fb = result().fallback_threshold_ms;
  EXPECT_GT(fb, 400.0);
  EXPECT_LT(fb, 700.0);  // paper's fallback was 527 ms
  for (const auto& o : result().operators) {
    if (o.declared_orbit == orbit::OrbitClass::geo && !o.covered_by_strict &&
        o.identified()) {
      EXPECT_DOUBLE_EQ(o.relax_threshold_ms, fb);
    }
  }
}

TEST(PipelineTest, HighPrecisionOnAllIdentified) {
  for (const auto& o : result().operators) {
    if (!o.identified()) continue;
    EXPECT_GT(o.precision(), 0.9) << o.name;
  }
}

TEST(PipelineTest, HighRecallOnPureSatelliteOperators) {
  for (const char* name : {"starlink", "oneweb", "o3b/ses", "kvh", "ssi"}) {
    EXPECT_GT(op(name).recall(), 0.85) << name;
  }
}

TEST(PipelineTest, NonMlabOperatorsNotIdentified) {
  for (const char* name : {"telesat", "thaicom", "speedcast"}) {
    EXPECT_FALSE(op(name).identified()) << name;
  }
}

TEST(PipelineTest, DescribeRendersSummary) {
  const std::string text = describe(result());
  EXPECT_NE(text.find("starlink"), std::string::npos);
  EXPECT_NE(text.find("identified"), std::string::npos);
}

// -------------------------------------------------------------- analysis

TEST(AnalysisTest, OrbitLatencyOrdering) {
  const auto groups = retained_by_orbit(result());
  const auto med = [&](orbit::OrbitClass c) {
    return stats::median(dataset().field(groups.at(c), &mlab::NdtRecord::latency_p5_ms));
  };
  const double leo = med(orbit::OrbitClass::leo);
  const double meo = med(orbit::OrbitClass::meo);
  const double geo = med(orbit::OrbitClass::geo);
  EXPECT_LT(leo, meo);
  EXPECT_LT(meo, geo);
  // Paper Fig 3c bands.
  EXPECT_NEAR(leo, 56.0, 25.0);
  EXPECT_NEAR(meo, 280.0, 90.0);
  EXPECT_NEAR(geo, 673.0, 80.0);
}

TEST(AnalysisTest, JitterVariabilityLeoAboveGeo) {
  const auto groups = retained_by_orbit(result());
  const auto jv_leo = jitter_variability(dataset(), groups.at(orbit::OrbitClass::leo));
  const auto jv_geo = jitter_variability(dataset(), groups.at(orbit::OrbitClass::geo));
  // Paper Fig 4b: LEO median ~0.5 vs GEO ~0.28.
  EXPECT_GT(stats::median(jv_leo), stats::median(jv_geo));
}

TEST(AnalysisTest, AbsoluteJitterGeoAboveLeo) {
  const auto groups = retained_by_orbit(result());
  const auto j_leo =
      dataset().field(groups.at(orbit::OrbitClass::leo), &mlab::NdtRecord::jitter_p95_ms);
  const auto j_geo =
      dataset().field(groups.at(orbit::OrbitClass::geo), &mlab::NdtRecord::jitter_p95_ms);
  // Paper Fig 4b inset: GEO's absolute jitter is far larger.
  EXPECT_GT(stats::median(j_geo), stats::median(j_leo));
}

TEST(AnalysisTest, PepSplitMatchesFig4c) {
  const auto g = retransmission_groups(dataset(), result());
  ASSERT_FALSE(g.leo.empty());
  ASSERT_FALSE(g.geo_pep.empty());
  ASSERT_FALSE(g.geo_others.empty());
  const double leo = stats::median(g.leo);
  const double pep = stats::median(g.geo_pep);
  const double others = stats::median(g.geo_others);
  EXPECT_GT(others, 3 * pep);   // PEP suppresses retransmissions
  EXPECT_LT(pep, leo + 0.03);   // PEP GEO comparable to LEO
  EXPECT_GT(others, 0.04);      // paper: median 8.74%
}

TEST(AnalysisTest, PepOperatorListMatchesFootnote) {
  EXPECT_TRUE(is_pep_operator("hughesnet"));
  EXPECT_TRUE(is_pep_operator("viasat"));
  EXPECT_TRUE(is_pep_operator("eutelsat"));
  EXPECT_TRUE(is_pep_operator("avanti"));
  EXPECT_FALSE(is_pep_operator("kvh"));
  EXPECT_EQ(pep_operators().size(), 4u);
}

TEST(AnalysisTest, BoxplotsSortedByMedian) {
  const auto boxes = latency_boxplots(dataset(), result());
  ASSERT_GE(boxes.size(), 15u);
  for (std::size_t i = 1; i < boxes.size(); ++i) {
    EXPECT_LE(boxes[i - 1].second.median, boxes[i].second.median);
  }
  // Starlink fastest overall; KVH the slowest GEO (Fig 3c).
  EXPECT_EQ(boxes.front().first, "starlink");
  EXPECT_EQ(boxes.back().first, "kvh");
}

TEST(AnalysisTest, ConfusionMatrixPartitionsDataset) {
  const auto cm = confusion_matrix(dataset(), result());
  EXPECT_EQ(cm.true_positive + cm.false_positive + cm.false_negative +
                cm.true_negative,
            dataset().size());
  EXPECT_GT(cm.precision(), 0.95);
  EXPECT_GT(cm.recall(), 0.9);
  EXPECT_LT(cm.false_positive_rate(), 0.05);
  EXPECT_GT(cm.true_negative, 0u);  // the corporate/hybrid tests exist
}

TEST(AnalysisTest, StarlinkMoreConsistentAcrossCountriesThanOneWeb) {
  // §4: Starlink's dense PoP footprint gives uniform latency; OneWeb's
  // two US PoPs skew it heavily by geography.
  const double starlink = country_consistency_spread(dataset(), result(), "starlink");
  const double oneweb = country_consistency_spread(dataset(), result(), "oneweb");
  EXPECT_GT(oneweb, 1.5 * starlink);
}

TEST(AnalysisTest, LatencyByCountrySortedAndFiltered) {
  const auto rows = latency_by_country(dataset(), result(), "starlink");
  ASSERT_GE(rows.size(), 3u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].second.median, rows[i].second.median);
  }
  for (const auto& [country, box] : rows) EXPECT_GE(box.count, 5u);
  EXPECT_TRUE(latency_by_country(dataset(), result(), "nope").empty());
}

TEST(AnalysisTest, DailySeriesCoversCampaign) {
  const auto series = daily_latency_series(dataset(), result(), "starlink");
  EXPECT_GT(series.size(), 300u);  // most days of a 730-day window
  for (const auto& b : series) EXPECT_GT(b.median, 20.0);
  EXPECT_TRUE(daily_latency_series(dataset(), result(), "nope").empty());
}

}  // namespace
}  // namespace satnet::snoid
