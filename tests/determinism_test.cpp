// Shard-merge determinism: a seeded campaign is a pure function of
// (seed, config), never of thread count or scheduling order. These tests
// run the same campaigns at 1, 2, and 8 threads and require byte-equal
// outputs. They are also the workload for the ThreadSanitizer preset
// (scripts/verify.sh builds with -DSATNET_TSAN=ON and runs this binary).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "mlab/campaign.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "orbit/access_index.hpp"
#include "orbit/timeline.hpp"
#include "ripe/atlas.hpp"
#include "snoid/pipeline.hpp"
#include "synth/world.hpp"

namespace satnet {
namespace {

const synth::World& world() {
  static const synth::World w;
  return w;
}

mlab::CampaignConfig campaign_config(unsigned threads) {
  mlab::CampaignConfig cfg;
  cfg.volume_scale = 0.0005;
  cfg.min_tests_per_sno = 25;
  cfg.threads = threads;
  return cfg;
}

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
}

std::uint64_t atlas_hash(const ripe::AtlasDataset& ds) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  fnv_mix(h, ds.traceroutes.size());
  for (const auto& t : ds.traceroutes) {
    fnv_mix(h, static_cast<std::uint64_t>(t.probe_id));
    fnv_mix(h, std::bit_cast<std::uint64_t>(t.t_sec));
    fnv_mix(h, static_cast<std::uint64_t>(t.root));
    fnv_mix(h, static_cast<std::uint64_t>(t.via_cgnat));
    fnv_mix(h, stats::Rng::hash_name(t.pop_name));
    fnv_mix(h, std::bit_cast<std::uint64_t>(t.cgnat_rtt_ms));
    fnv_mix(h, std::bit_cast<std::uint64_t>(t.dest_rtt_ms));
    fnv_mix(h, static_cast<std::uint64_t>(t.hop_count));
    fnv_mix(h, stats::Rng::hash_name(t.instance_city));
  }
  fnv_mix(h, ds.sslcerts.size());
  for (const auto& s : ds.sslcerts) {
    fnv_mix(h, static_cast<std::uint64_t>(s.probe_id));
    fnv_mix(h, std::bit_cast<std::uint64_t>(s.t_sec));
    fnv_mix(h, static_cast<std::uint64_t>(s.src_addr.value()));
  }
  return h;
}

TEST(DeterminismTest, NdtDatasetHashIdenticalAcrossThreadCounts) {
  const auto one = mlab::run_campaign(world(), campaign_config(1));
  const auto two = mlab::run_campaign(world(), campaign_config(2));
  const auto eight = mlab::run_campaign(world(), campaign_config(8));
  ASSERT_GT(one.size(), 0u);
  EXPECT_EQ(one.hash(), two.hash());
  EXPECT_EQ(one.hash(), eight.hash());
}

TEST(DeterminismTest, NdtRecordsByteIdenticalAcrossThreadCounts) {
  const auto one = mlab::run_campaign(world(), campaign_config(1));
  const auto eight = mlab::run_campaign(world(), campaign_config(8));
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    const auto& a = one.records()[i];
    const auto& b = eight.records()[i];
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.t_sec),
              std::bit_cast<std::uint64_t>(b.t_sec)) << "record " << i;
    ASSERT_EQ(a.asn, b.asn) << "record " << i;
    ASSERT_EQ(a.client_ip, b.client_ip) << "record " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.latency_p5_ms),
              std::bit_cast<std::uint64_t>(b.latency_p5_ms)) << "record " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.download_mbps),
              std::bit_cast<std::uint64_t>(b.download_mbps)) << "record " << i;
    ASSERT_EQ(a.truth_operator, b.truth_operator) << "record " << i;
    ASSERT_EQ(a.truth_satellite, b.truth_satellite) << "record " << i;
  }
}

TEST(DeterminismTest, PipelineResultsIdenticalAcrossThreadCounts) {
  const auto dataset = mlab::run_campaign(world(), campaign_config(1));
  snoid::PipelineConfig serial;
  serial.threads = 1;
  snoid::PipelineConfig sharded;
  sharded.threads = 8;
  const auto a = snoid::run_pipeline(dataset, serial);
  const auto b = snoid::run_pipeline(dataset, sharded);
  ASSERT_EQ(a.operators.size(), b.operators.size());
  EXPECT_EQ(a.identified_operators, b.identified_operators);
  EXPECT_DOUBLE_EQ(a.fallback_threshold_ms, b.fallback_threshold_ms);
  for (std::size_t i = 0; i < a.operators.size(); ++i) {
    const auto& x = a.operators[i];
    const auto& y = b.operators[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.retained, y.retained) << x.name;
    EXPECT_DOUBLE_EQ(x.relax_threshold_ms, y.relax_threshold_ms) << x.name;
    EXPECT_DOUBLE_EQ(x.precision(), y.precision()) << x.name;
    EXPECT_DOUBLE_EQ(x.recall(), y.recall()) << x.name;
  }
}

TEST(DeterminismTest, AtlasDatasetIdenticalAcrossThreadCounts) {
  ripe::AtlasConfig cfg;
  cfg.duration_days = 60.0;
  cfg.round_interval_hours = 24.0;
  std::uint64_t hashes[3] = {};
  int i = 0;
  for (const unsigned threads : {1u, 2u, 8u}) {
    cfg.threads = threads;
    const auto ds = ripe::run_atlas_campaign(cfg);
    ASSERT_GT(ds.traceroutes.size(), 0u);
    hashes[i++] = atlas_hash(ds);
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
}

TEST(DeterminismTest, ObservabilityNeverPerturbsResults) {
  // The obs contract: metrics and spans are wall-clock telemetry that
  // never feeds back into simulation state. Campaign output must be
  // byte-identical with observability fully off and fully on, at every
  // thread count.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Tracer& tracer = obs::Tracer::global();

  reg.set_enabled(false);
  tracer.set_enabled(false);
  const auto baseline = mlab::run_campaign(world(), campaign_config(1));
  snoid::PipelineConfig pcfg;
  pcfg.threads = 1;
  const auto baseline_pipeline = snoid::run_pipeline(baseline, pcfg);
  ASSERT_GT(baseline.size(), 0u);

  reg.set_enabled(true);
  tracer.set_enabled(true);
  for (const unsigned threads : {1u, 2u, 8u}) {
    const auto ds = mlab::run_campaign(world(), campaign_config(threads));
    EXPECT_EQ(baseline.hash(), ds.hash()) << threads << " threads";
    snoid::PipelineConfig cfg;
    cfg.threads = threads;
    const auto pipe = snoid::run_pipeline(ds, cfg);
    ASSERT_EQ(baseline_pipeline.operators.size(), pipe.operators.size());
    EXPECT_EQ(baseline_pipeline.identified_operators, pipe.identified_operators);
    for (std::size_t i = 0; i < pipe.operators.size(); ++i) {
      const auto& a = baseline_pipeline.operators[i];
      const auto& b = pipe.operators[i];
      EXPECT_DOUBLE_EQ(a.precision(), b.precision()) << b.name;
      EXPECT_DOUBLE_EQ(a.recall(), b.recall()) << b.name;
    }
  }
  // Instrumentation did observe the runs (sanity: spans were recorded).
  EXPECT_FALSE(tracer.drain().empty());
  tracer.set_enabled(false);  // restore defaults for other tests
}

TEST(DeterminismTest, RecorderNeverPerturbsResults) {
  // The flight recorder and phase profiler are observation-only: events
  // land in rings, aggregates in the registry, nothing is ever read
  // back by the simulation. Campaign output must be byte-identical with
  // the recorder fully on (tight ring, to exercise overflow) and fully
  // off, at every thread count.
  obs::FlightRecorder& rec = obs::FlightRecorder::global();
  rec.set_enabled(false);
  const auto baseline = mlab::run_campaign(world(), campaign_config(1));
  ripe::AtlasConfig acfg;
  acfg.duration_days = 30.0;
  acfg.round_interval_hours = 24.0;
  acfg.threads = 1;
  const std::uint64_t atlas_baseline = atlas_hash(ripe::run_atlas_campaign(acfg));
  ASSERT_GT(baseline.size(), 0u);

  const std::size_t old_capacity = rec.ring_capacity();
  rec.set_enabled(true);
  rec.set_ring_capacity(8);  // force drop-oldest on busy shards
  for (const unsigned threads : {1u, 2u, 8u}) {
    const auto ds = mlab::run_campaign(world(), campaign_config(threads));
    EXPECT_EQ(baseline.hash(), ds.hash()) << threads << " threads (recorder on)";
    acfg.threads = threads;
    EXPECT_EQ(atlas_baseline, atlas_hash(ripe::run_atlas_campaign(acfg)))
        << threads << " threads (recorder on)";
  }
  // The recorder did observe the runs (sanity: events were recorded).
  EXPECT_FALSE(rec.drain().empty());
  rec.set_ring_capacity(old_capacity);
  rec.set_enabled(false);  // restore defaults for other tests
}

TEST(DeterminismTest, AccessCacheNeverPerturbsResults) {
  // The access-index contract mirrors the obs one: every cached value
  // equals what the uncached computation would produce, so campaign
  // output must be byte-identical with the cache on and off, at every
  // thread count. (The index itself is exercised heavily here — mlab
  // and atlas shards sample the Starlink network throughout. The epoch
  // timeline is ablated for the whole A/B: with replay active the index
  // never runs and the toggle would measure nothing.)
  orbit::set_timeline_enabled(false);
  orbit::set_access_cache_enabled(false);
  const auto baseline = mlab::run_campaign(world(), campaign_config(1));
  ripe::AtlasConfig acfg;
  acfg.duration_days = 30.0;
  acfg.round_interval_hours = 24.0;
  acfg.threads = 1;
  const std::uint64_t atlas_baseline = atlas_hash(ripe::run_atlas_campaign(acfg));
  ASSERT_GT(baseline.size(), 0u);

  orbit::set_access_cache_enabled(true);
  for (const unsigned threads : {1u, 2u, 8u}) {
    const auto ds = mlab::run_campaign(world(), campaign_config(threads));
    EXPECT_EQ(baseline.hash(), ds.hash()) << threads << " threads (cache on)";
    acfg.threads = threads;
    EXPECT_EQ(atlas_baseline, atlas_hash(ripe::run_atlas_campaign(acfg)))
        << threads << " threads (cache on)";
  }
  orbit::set_timeline_enabled(true);
}

TEST(DeterminismTest, TimelineNeverPerturbsResults) {
  // The epoch-timeline contract mirrors the access-cache one: every
  // replayed serving decision and sample equals what the on-demand
  // computation would produce, so campaign output must be byte-identical
  // with the timeline on and off, at every thread count — including the
  // atlas campaign, whose pre-pass peeks round streams on copies.
  orbit::EpochTimeline::clear_installed();
  orbit::set_timeline_enabled(false);
  const auto baseline = mlab::run_campaign(world(), campaign_config(1));
  ripe::AtlasConfig acfg;
  acfg.duration_days = 30.0;
  acfg.round_interval_hours = 24.0;
  acfg.threads = 1;
  const std::uint64_t atlas_baseline = atlas_hash(ripe::run_atlas_campaign(acfg));
  ASSERT_GT(baseline.size(), 0u);

  orbit::set_timeline_enabled(true);
  for (const unsigned threads : {1u, 2u, 8u}) {
    const auto ds = mlab::run_campaign(world(), campaign_config(threads));
    EXPECT_EQ(baseline.hash(), ds.hash()) << threads << " threads (timeline on)";
    acfg.threads = threads;
    EXPECT_EQ(atlas_baseline, atlas_hash(ripe::run_atlas_campaign(acfg)))
        << threads << " threads (timeline on)";
  }
  // The runs above actually replayed (sanity: the snapshot was consulted).
  EXPECT_GT(obs::MetricsRegistry::global().counter("timeline.replay.hit").value(), 0u);
}

TEST(DeterminismTest, RepeatedRunsIdentical) {
  // Same thread count twice: guards against any residual global state.
  const auto a = mlab::run_campaign(world(), campaign_config(4));
  const auto b = mlab::run_campaign(world(), campaign_config(4));
  EXPECT_EQ(a.hash(), b.hash());
}

}  // namespace
}  // namespace satnet
