// Epoch-timeline unit tests: replay equivalence against the on-demand
// oracle, handoff prev-epoch coverage, era-keyed invalidation under a
// fault plan, sat-id packing, and the serialize -> load -> replay
// round trip. The golden and determinism suites pin the campaign-level
// byte-identity contract; these tests pin the mechanism.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "fault/hook.hpp"
#include "fault/plan.hpp"
#include "io/timeline_io.hpp"
#include "obs/metrics.hpp"
#include "orbit/access.hpp"
#include "orbit/shell.hpp"
#include "orbit/timeline.hpp"

namespace satnet {
namespace {

orbit::AccessNetwork make_net() {
  static const auto constellation =
      std::make_shared<const orbit::Constellation>(orbit::starlink_shells());
  return orbit::make_starlink_access(constellation);
}

const geo::GeoPoint kUsers[] = {
    {47.61, -122.33, 0}, {40.71, -74.01, 0}, {-33.87, 151.21, 0}, {61.22, -149.90, 0}};

std::vector<orbit::TimelineQuery> grid_queries(int epochs) {
  std::vector<orbit::TimelineQuery> queries;
  for (const auto& u : kUsers) {
    for (int e = 1; e <= epochs; ++e) queries.push_back({u, 15.0 * e});
  }
  return queries;
}

std::uint64_t counter(const char* name) {
  return obs::MetricsRegistry::global().counter(name).value();
}

bool sample_equal(const orbit::AccessSample& a, const orbit::AccessSample& b) {
  return a.reachable == b.reachable &&
         std::bit_cast<std::uint64_t>(a.one_way_ms) ==
             std::bit_cast<std::uint64_t>(b.one_way_ms) &&
         std::bit_cast<std::uint64_t>(a.up_ms) == std::bit_cast<std::uint64_t>(b.up_ms) &&
         std::bit_cast<std::uint64_t>(a.down_ms) ==
             std::bit_cast<std::uint64_t>(b.down_ms) &&
         std::bit_cast<std::uint64_t>(a.backhaul_ms) ==
             std::bit_cast<std::uint64_t>(b.backhaul_ms) &&
         std::bit_cast<std::uint64_t>(a.scheduling_ms) ==
             std::bit_cast<std::uint64_t>(b.scheduling_ms) &&
         a.serving_sat == b.serving_sat && a.pop_index == b.pop_index &&
         a.gateway_index == b.gateway_index && a.handoff == b.handoff;
}

class TimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    orbit::EpochTimeline::clear_installed();
    orbit::set_timeline_enabled(true);
  }
  void TearDown() override {
    orbit::EpochTimeline::clear_installed();
    orbit::set_timeline_enabled(true);
    fault::Hook::clear();
  }
};

TEST_F(TimelineTest, PackUnpackRoundTrip) {
  for (const orbit::SatId id : {orbit::SatId{0, 0, 0}, orbit::SatId{3, 71, 21},
                                orbit::SatId{1023, 1023, 1023}}) {
    const std::uint32_t packed = orbit::EpochTimeline::pack_sat(id);
    const orbit::SatId back = orbit::EpochTimeline::unpack_sat(packed);
    EXPECT_EQ(id.shell, back.shell);
    EXPECT_EQ(id.plane, back.plane);
    EXPECT_EQ(id.index, back.index);
  }
  EXPECT_NE(orbit::EpochTimeline::pack_sat({1023, 1023, 1023}),
            orbit::EpochTimeline::kNoSat);
}

TEST_F(TimelineTest, ReplayMatchesOnDemandOracle) {
  const orbit::AccessNetwork net = make_net();
  orbit::set_timeline_enabled(false);
  std::vector<orbit::AccessSample> oracle;
  for (const auto& q : grid_queries(60)) {
    oracle.push_back(net.sample(q.terminal, q.t_sec));
  }

  orbit::set_timeline_enabled(true);
  orbit::EpochTimeline::ensure(net, grid_queries(60), 2);
  ASSERT_NE(orbit::EpochTimeline::find(net.identity_hash()), nullptr);
  const std::uint64_t hits0 = counter("timeline.replay.hit");
  std::size_t i = 0;
  for (const auto& q : grid_queries(60)) {
    const orbit::AccessSample replayed = net.sample(q.terminal, q.t_sec);
    EXPECT_TRUE(sample_equal(oracle[i], replayed)) << "query " << i;
    ++i;
  }
  EXPECT_GT(counter("timeline.replay.hit"), hits0);
}

TEST_F(TimelineTest, HandoffPrevEpochCovered) {
  // sample_with_handoff needs the previous epoch's serving satellite;
  // ensure() must precompute it so the handoff path replays without a
  // single fallback.
  const orbit::AccessNetwork net = make_net();
  orbit::set_timeline_enabled(false);
  std::vector<orbit::AccessSample> oracle;
  for (const auto& q : grid_queries(40)) {
    oracle.push_back(net.sample_with_handoff(q.terminal, q.t_sec));
  }

  orbit::set_timeline_enabled(true);
  orbit::EpochTimeline::ensure(net, grid_queries(40), 1);
  const std::uint64_t fallback0 = counter("timeline.replay.fallback");
  std::size_t i = 0;
  for (const auto& q : grid_queries(40)) {
    const orbit::AccessSample replayed = net.sample_with_handoff(q.terminal, q.t_sec);
    EXPECT_TRUE(sample_equal(oracle[i], replayed)) << "query " << i;
    ++i;
  }
  EXPECT_EQ(counter("timeline.replay.fallback"), fallback0);
}

TEST_F(TimelineTest, ThreadCountDoesNotChangeSnapshot) {
  const orbit::AccessNetwork net = make_net();
  orbit::EpochTimeline::ensure(net, grid_queries(50), 1);
  const auto serial = orbit::EpochTimeline::installed();
  ASSERT_EQ(serial.size(), 1u);
  const std::string serial_bytes = io::serialize_timelines(serial, "t");

  orbit::EpochTimeline::clear_installed();
  orbit::EpochTimeline::ensure(net, grid_queries(50), 8);
  const std::string parallel_bytes =
      io::serialize_timelines(orbit::EpochTimeline::installed(), "t");
  EXPECT_EQ(serial_bytes, parallel_bytes);
}

TEST_F(TimelineTest, FaultPlanInvalidatesStaleEras) {
  // A snapshot built without a plan must fall back (not replay stale
  // values) inside windows a later-installed plan affects — and the
  // values the campaign sees must equal the on-demand oracle's.
  const orbit::AccessNetwork net = make_net();
  orbit::EpochTimeline::ensure(net, grid_queries(60), 1);

  fault::FaultEvent outage;
  outage.kind = fault::EventKind::gateway_outage;
  outage.target = "*";
  outage.t_start_sec = 300.0;
  outage.t_end_sec = 450.0;
  fault::Hook::install(fault::FaultPlan({outage}));

  orbit::set_timeline_enabled(false);
  std::vector<orbit::AccessSample> oracle;
  for (const auto& q : grid_queries(60)) {
    oracle.push_back(net.sample(q.terminal, q.t_sec));
  }

  orbit::set_timeline_enabled(true);
  const std::uint64_t fallback0 = counter("timeline.replay.fallback");
  std::size_t i = 0;
  for (const auto& q : grid_queries(60)) {
    const orbit::AccessSample replayed = net.sample(q.terminal, q.t_sec);
    EXPECT_TRUE(sample_equal(oracle[i], replayed)) << "query " << i;
    ++i;
  }
  // Queries inside the outage window hit stale eras and fell back.
  EXPECT_GT(counter("timeline.replay.fallback"), fallback0);

  // Rebuilding under the active plan restores full replay coverage.
  orbit::EpochTimeline::ensure(net, grid_queries(60), 1);
  const std::uint64_t fallback1 = counter("timeline.replay.fallback");
  i = 0;
  for (const auto& q : grid_queries(60)) {
    const orbit::AccessSample replayed = net.sample(q.terminal, q.t_sec);
    EXPECT_TRUE(sample_equal(oracle[i], replayed)) << "query " << i;
    ++i;
  }
  EXPECT_EQ(counter("timeline.replay.fallback"), fallback1);
}

TEST_F(TimelineTest, GeneratedPlanEraKeysPartitionTheTimeline) {
  // An auto-generated plan spanning the query horizon: every outage and
  // storm edge must become an era boundary, the key list must cover
  // exactly boundaries+1 disjoint intervals, and keys must change across
  // each fault edge (the active set differs by that event).
  const orbit::AccessNetwork net = make_net();
  fault::GenerateConfig cfg;
  cfg.horizon_sec = 900;  // grid_queries(60) spans [15, 900]
  cfg.gateway_outages = 3;
  cfg.gateway_names = {"seattle", "newyork"};
  cfg.handoff_storms = 2;
  cfg.storm_network = "starlink";
  const fault::FaultPlan plan = fault::FaultPlan::generate(cfg, 2026);
  fault::Hook::install(plan);
  orbit::EpochTimeline::ensure(net, grid_queries(60), 1);
  const orbit::EpochTimeline* tl = orbit::EpochTimeline::find(net.identity_hash());
  ASSERT_NE(tl, nullptr);

  const std::vector<double>& b = tl->boundaries();
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_LT(b[i - 1], b[i]) << "boundaries must strictly increase";
  }
  ASSERT_EQ(tl->era_keys().size(), b.size() + 1)
      << "one key per era: the keys partition the whole time axis";

  for (const fault::FaultEvent& ev : plan.events()) {
    if (ev.kind != fault::EventKind::gateway_outage &&
        ev.kind != fault::EventKind::handoff_storm) {
      continue;
    }
    for (const double edge : {ev.t_start_sec, ev.t_end_sec}) {
      const auto it = std::find(b.begin(), b.end(), edge);
      ASSERT_NE(it, b.end()) << fault::to_string(ev.kind) << " edge " << edge
                             << " missing from era boundaries";
      // Boundary b[k] separates era k from era k+1; the event toggles
      // exactly there, so the fault keys on both sides must differ.
      const std::size_t k = static_cast<std::size_t>(it - b.begin());
      EXPECT_NE(tl->era_keys()[k], tl->era_keys()[k + 1])
          << "era key unchanged across fault edge " << edge;
    }
  }

  // Extending the plan invalidates exactly the eras intersecting the new
  // window: those fall back, every other era keeps replaying. The added
  // target matches no real gateway, so only era bookkeeping changes.
  std::vector<fault::FaultEvent> extended = plan.events();
  fault::FaultEvent extra;
  extra.kind = fault::EventKind::gateway_outage;
  extra.target = "no-such-gateway";
  extra.t_start_sec = 333.25;
  extra.t_end_sec = 444.75;
  extended.push_back(extra);
  fault::Hook::install(fault::FaultPlan(std::move(extended)));

  for (const auto& q : grid_queries(60)) {
    const std::uint64_t hit0 = counter("timeline.replay.hit");
    const std::uint64_t fallback0 = counter("timeline.replay.fallback");
    net.sample(q.terminal, q.t_sec);
    const std::size_t era = static_cast<std::size_t>(
        std::upper_bound(b.begin(), b.end(), q.t_sec) - b.begin());
    const double lo = era == 0 ? -1e18 : b[era - 1];
    const double hi = era == b.size() ? 1e18 : b[era];
    const bool invalidated = lo < extra.t_end_sec && extra.t_start_sec < hi;
    if (invalidated) {
      EXPECT_GT(counter("timeline.replay.fallback"), fallback0)
          << "t=" << q.t_sec << " sits in an invalidated era and must fall back";
    } else {
      EXPECT_EQ(counter("timeline.replay.fallback"), fallback0)
          << "t=" << q.t_sec << " is outside the new window and must replay";
      EXPECT_GT(counter("timeline.replay.hit"), hit0);
    }
  }
}

TEST_F(TimelineTest, SerializeLoadReplayRoundTrip) {
  const orbit::AccessNetwork net = make_net();
  orbit::EpochTimeline::ensure(net, grid_queries(30), 1);
  std::vector<orbit::AccessSample> built;
  for (const auto& q : grid_queries(30)) {
    built.push_back(net.sample(q.terminal, q.t_sec));
  }

  const std::string image =
      io::serialize_timelines(orbit::EpochTimeline::installed(), "round-trip");
  orbit::EpochTimeline::clear_installed();

  auto backing = std::make_shared<std::string>(image);
  std::vector<std::shared_ptr<const orbit::EpochTimeline>> loaded;
  io::TimelineFileInfo info;
  ASSERT_EQ(io::parse_timelines(*backing, backing, &loaded, &info), "");
  EXPECT_EQ(info.manifest, "round-trip");
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.front()->identity(), net.identity_hash());
  for (auto& tl : loaded) orbit::EpochTimeline::install(std::move(tl));

  const std::uint64_t hits0 = counter("timeline.replay.hit");
  std::size_t i = 0;
  for (const auto& q : grid_queries(30)) {
    const orbit::AccessSample replayed = net.sample(q.terminal, q.t_sec);
    EXPECT_TRUE(sample_equal(built[i], replayed)) << "query " << i;
    ++i;
  }
  EXPECT_GT(counter("timeline.replay.hit"), hits0);
}

TEST_F(TimelineTest, DisabledTimelineIsNeverConsulted) {
  const orbit::AccessNetwork net = make_net();
  orbit::EpochTimeline::ensure(net, grid_queries(10), 1);
  orbit::set_timeline_enabled(false);
  const std::uint64_t hits0 = counter("timeline.replay.hit");
  for (const auto& q : grid_queries(10)) net.sample(q.terminal, q.t_sec);
  EXPECT_EQ(counter("timeline.replay.hit"), hits0);
}

}  // namespace
}  // namespace satnet
