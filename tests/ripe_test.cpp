#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "ripe/atlas.hpp"
#include "ripe/probes.hpp"

namespace satnet::ripe {
namespace {

const AtlasDataset& dataset() {
  static const AtlasDataset ds = [] {
    AtlasConfig cfg;
    cfg.duration_days = 40.0;  // enough rounds for every analysis
    cfg.round_interval_hours = 24.0;
    return run_atlas_campaign(cfg);
  }();
  return ds;
}

const orbit::AccessNetwork& starlink() {
  static const orbit::AccessNetwork net = orbit::make_starlink_access(
      std::make_shared<orbit::Constellation>(orbit::starlink_shells()));
  return net;
}

// --------------------------------------------------------------- probes

TEST(ProbesTest, Table2Composition) {
  const auto probes = starlink_probe_candidates();
  std::map<std::string, int> by_country;
  int decoys = 0;
  for (const auto& p : probes) {
    if (p.stale_asn) {  // genuinely off-Starlink; multihomed probes count
      ++decoys;
      continue;
    }
    ++by_country[p.country];
  }
  EXPECT_EQ(probes.size() - decoys, 67u);  // Table 2's probe count
  EXPECT_EQ(by_country["US"], 33);
  EXPECT_EQ(by_country["DE"], 5);
  EXPECT_EQ(by_country["FR"], 5);
  EXPECT_EQ(by_country["GB"], 5);
  EXPECT_EQ(by_country["AU"], 4);
  EXPECT_EQ(by_country["NZ"], 1);
  EXPECT_EQ(by_country["PH"], 1);
  EXPECT_EQ(by_country["CL"], 1);
  EXPECT_EQ(by_country.size(), 15u);
}

TEST(ProbesTest, StartDaysFollowTable2) {
  EXPECT_DOUBLE_EQ(start_day_for("22/05"), 0.0);
  EXPECT_DOUBLE_EQ(start_day_for("23/03"), 305.0);
  EXPECT_THROW(start_day_for("24/01"), std::invalid_argument);
  for (const auto& p : starlink_probe_candidates()) {
    if (p.country == "PH") {
      EXPECT_DOUBLE_EQ(p.start_day, 305.0);
    }
    if (p.country == "FR") {
      EXPECT_DOUBLE_EQ(p.start_day, 180.0);
    }
  }
}

TEST(ProbesTest, NevadaProbesSplitRenoVegas) {
  std::vector<Probe> nv;
  for (const auto& p : starlink_probe_candidates()) {
    if (p.us_state == "NV") nv.push_back(p);
  }
  ASSERT_EQ(nv.size(), 2u);
  EXPECT_NEAR(nv[0].location.lat_deg, 39.53, 0.01);  // Reno
  EXPECT_NEAR(nv[1].location.lat_deg, 36.17, 0.01);  // Las Vegas
}

// ------------------------------------------------------------- identity

TEST(AtlasTest, PublicIpEncodesPop) {
  const auto probes = starlink_probe_candidates();
  const net::Ipv4 ip = probe_public_ip(probes[0], 16);
  EXPECT_EQ(reverse_dns(ip, starlink()), "customer.tkyojpn1.pop.starlinkisp.net");
}

TEST(AtlasTest, ReverseDnsRejectsForeignSpace) {
  EXPECT_EQ(reverse_dns(net::Ipv4(8, 8, 8, 8), starlink()), "");
  EXPECT_EQ(reverse_dns(net::Ipv4(98, 97, 250, 1), starlink()), "");  // no such PoP
}

// ------------------------------------------------------------ traceroute

TEST(AtlasTest, TracerouteStructure) {
  stats::Rng rng(1);
  const auto probes = starlink_probe_candidates();
  const net::Route route = build_traceroute(starlink(), probes[0], 3600.0, 'A', rng);
  ASSERT_GE(route.hops.size(), 5u);
  // Hop 2 is the CGNAT gateway with the PoP RTT.
  const net::Hop* cgnat = route.find_ip(net::kCgnatGateway);
  ASSERT_NE(cgnat, nullptr);
  EXPECT_EQ(cgnat->ttl, 2);
  EXPECT_GT(cgnat->rtt_ms, 20.0);
  // Destination is a root server.
  EXPECT_NE(route.hops.back().name.find("root-servers.net"), std::string::npos);
  EXPECT_GE(route.destination_rtt_ms(), cgnat->rtt_ms);
}

TEST(AtlasTest, TracerouteHopNamesIncludePop) {
  stats::Rng rng(2);
  const auto probes = starlink_probe_candidates();
  const net::Route route = build_traceroute(starlink(), probes[0], 7200.0, 'J', rng);
  bool pop_hop = false;
  for (const auto& h : route.hops) {
    if (h.name.find("pop.starlinkisp.net") != std::string::npos) pop_hop = true;
  }
  EXPECT_TRUE(pop_hop);
}

// -------------------------------------------------------------- campaign

TEST(AtlasTest, CampaignVolumes) {
  const auto& ds = dataset();
  EXPECT_GT(ds.traceroutes.size(), 10000u);
  EXPECT_GT(ds.sslcerts.size(), 500u);
  // 13 roots per round.
  std::set<char> roots;
  for (const auto& t : ds.traceroutes) roots.insert(t.root);
  EXPECT_EQ(roots.size(), 13u);
}

TEST(AtlasTest, ValidationDropsStaleAsnProbes) {
  const auto& ds = dataset();
  const auto valid = validated_probe_ids(ds);
  std::set<int> valid_set(valid.begin(), valid.end());
  std::size_t genuine = 0;
  for (const auto& p : ds.probes) {
    if (p.stale_asn) {
      EXPECT_FALSE(valid_set.count(p.id)) << "stale probe " << p.id;
    } else {
      if (valid_set.count(p.id)) ++genuine;
    }
  }
  EXPECT_EQ(genuine, valid.size());
}

TEST(AtlasTest, SixtySevenValidProbesEventually) {
  // With the 40-day window the late probes (PH, CL, BE, PL) have not yet
  // activated; run a full-year campaign at coarse cadence to check the 67.
  AtlasConfig cfg;
  cfg.duration_days = 366.0;
  cfg.round_interval_hours = 24.0 * 7;
  const auto ds = run_atlas_campaign(cfg);
  const auto valid = validated_probe_ids(ds);
  EXPECT_EQ(valid.size(), 67u);
  // The multihomed (LTE failover) probe survives the majority rule.
  const std::set<int> valid_set(valid.begin(), valid.end());
  for (const auto& p : ds.probes) {
    if (p.lte_failover) {
      EXPECT_TRUE(valid_set.count(p.id));
    }
    if (p.stale_asn) {
      EXPECT_FALSE(valid_set.count(p.id));
    }
  }
}

TEST(AtlasTest, CgnatRttPlausiblePerCountry) {
  const auto& ds = dataset();
  std::map<int, const Probe*> probes;
  for (const auto& p : ds.probes) probes[p.id] = &p;
  for (const auto& t : ds.traceroutes) {
    if (!t.via_cgnat) continue;
    EXPECT_GT(t.cgnat_rtt_ms, 20.0);
    EXPECT_LT(t.cgnat_rtt_ms, 220.0);
    EXPECT_LE(t.cgnat_rtt_ms, t.dest_rtt_ms + 1e-9);
  }
}

TEST(AtlasTest, PopNamesAreKnownPops) {
  const auto& ds = dataset();
  std::set<std::string> known;
  for (const auto& pop : starlink().config().pops) known.insert(pop.name);
  for (const auto& t : ds.traceroutes) {
    if (t.via_cgnat) {
      EXPECT_TRUE(known.count(t.pop_name)) << t.pop_name;
    }
  }
}

TEST(AtlasTest, HopCountsGrowWithInstanceDistance) {
  const auto& ds = dataset();
  // For validated Starlink traceroutes the hop count is 4 + backbone.
  for (const auto& t : ds.traceroutes) {
    if (!t.via_cgnat) continue;
    EXPECT_GE(t.hop_count, 5);
    EXPECT_LE(t.hop_count, 40);
  }
}

}  // namespace
}  // namespace satnet::ripe
