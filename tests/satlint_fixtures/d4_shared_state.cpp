// Fixture: mutable static state in worker-executed code. Linted under a
// virtual src/mlab/ path so the shared-state rule applies.
#include <atomic>
#include <cstdint>
#include <vector>

namespace fixture {

// Namespace-scope const table: fine.
const std::vector<int> kTable = {1, 2, 3};

std::uint64_t run_shard(std::uint64_t shard) {
  static std::uint64_t calls = 0;  // hit: shared mutable counter
  ++calls;
  static const double kScale = 2.0;          // clean: const
  static constexpr int kChunk = 64;          // clean: constexpr
  static std::atomic<std::uint64_t> n{0};    // clean: atomic
  n.fetch_add(1);
  return shard * static_cast<std::uint64_t>(kScale) * kChunk + calls;
}

class Worker {
 public:
  static int helper();  // clean: static member declaration, not a local

 private:
  int state_ = 0;
};

}  // namespace fixture
