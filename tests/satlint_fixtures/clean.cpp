// Fixture: violation-free file; satlint must report nothing under any
// virtual path. Mentions of rand() or clock reads inside string literals
// and comments must not trigger.
#include <string>

std::string describe() {
  return "call rand() or steady_clock::now() — as text, not code";
}

// A comment saying std::random_device must also stay silent.
int answer() { return 42; }
