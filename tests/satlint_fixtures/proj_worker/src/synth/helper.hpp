// Helpers living outside every worker-classified directory — only true
// reachability from a worker entry can tie rules to them.
#pragma once

namespace satnet::synth {

void helper_tick();
double helper_jitter(unsigned long long seed);
void helper_cached();
void helper_idle();

}  // namespace satnet::synth
