#include "synth/helper.hpp"

namespace satnet::synth {

using satnet::stats::Rng;

void helper_tick() {
  static int calls = 0;  // hit: mutable static, worker-reachable
  ++calls;
}

double helper_jitter(unsigned long long seed) {
  Rng rng(seed);  // hit: raw seeded Rng, worker-reachable
  return rng.uniform();
}

void helper_cached() {
  // satlint:allow(worker-reach): fixture — guarded by the caller's shard-exclusive phase
  static int cache = 0;
  ++cache;
}

void helper_idle() {
  static int naps = 0;  // clean: never called from a worker entry
  ++naps;
}

}  // namespace satnet::synth
