// Worker entry: the lambda handed to submit() reaches the synth
// helpers, so their statics/Rng become shard-visible state.
#include "synth/helper.hpp"

namespace satnet::mlab {

void run_all() {
  runtime::ThreadPool pool(4);
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      synth::helper_tick();
      synth::helper_jitter(7);
      synth::helper_cached();
    });
  }
  synth::helper_idle();  // called on the coordinator, not a worker
}

}  // namespace satnet::mlab
