// D1 clock-boundary fixture. The flight recorder's timestamp field is
// the canonical allowed pattern: a steady-clock epoch captured once
// behind an explicit allow, feeding a wall-clock-only field (wall_us)
// that goldens exclude. The raw read in wall_now_us() is the boundary
// case — auto-suppressed when this file is classified under src/obs or
// src/runtime, a violation anywhere else.
#include <chrono>

struct EventRecord {
  unsigned long long wall_us = 0;  // telemetry-only, excluded from goldens
};

struct Recorder {
  Recorder()
      // satlint:allow(nondet-source): recorder timestamp epoch; wall_us is telemetry-only and excluded from goldens
      : epoch_(std::chrono::steady_clock::now()) {}

  unsigned long long wall_now_us() const {
    const auto now = std::chrono::steady_clock::now();
    return static_cast<unsigned long long>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - epoch_)
            .count());
  }

  std::chrono::steady_clock::time_point epoch_;
};
