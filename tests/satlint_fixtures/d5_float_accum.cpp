// Fixture: floating-point accumulation in a merge path. Linted under a
// virtual src/runtime/ path so the float-accum rule applies.
#include <cstddef>
#include <vector>

double merge_unannotated(const std::vector<double>& shard_values) {
  double total = 0;
  for (const double v : shard_values) {
    total += v;  // hit: order-sensitive accumulation, not annotated
  }
  return total;
}

double merge_annotated(const std::vector<double>& shard_values) {
  double total = 0;
  for (const double v : shard_values) {
    // satlint: deterministic-merge: slots fold in shard-index order
    total += v;
  }
  return total;
}

double time_stepper(double horizon, double interval) {
  double last = 0;
  for (double t = 0; t < horizon; t += interval) last = t;  // clean: for-header step
  return last;
}

std::size_t integer_merge(const std::vector<std::size_t>& counts) {
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;  // clean: integer accumulation
  return total;
}
