// Fixture: persistence nondeterminism. Linted under a virtual src/io/
// path so the persist-nondet rule applies; the same content under
// src/mlab/ or tests/ must stay silent. This file deliberately has no
// k...Version constant, so its binary writes are unstamped hits — the
// stamped variant is exercised by prepending a version line in the test.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace fixture {

std::string scan(const std::string& dir) {
  std::string names;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {  // hit
    names += e.path().string();
  }
  return names;
}

void* map_file(int fd, std::size_t len);

void* load(int fd, std::size_t len) {
  void* addr = mmap(nullptr, len, 0, 0, fd, 0);  // hit: result-dependent path
  return addr != nullptr ? addr : map_file(fd, len);
}

void save(const std::string& path, const char* data, std::size_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);  // hit: unstamped
  out.write(data, static_cast<std::streamsize>(n));
}

void save_c(std::FILE* f, const char* data, std::size_t n) {
  std::fwrite(data, 1, n, f);  // hit: unstamped
}

// Clean: text-mode writes carry no binary layout to version.
void save_text(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  out << body;
}

// Clean: reading is not writing; an ifstream in binary mode is fine.
std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// satlint:allow(persist-nondet): fallback read produces byte-identical results
void* load_annotated(int fd, std::size_t len) { return mmap(nullptr, len, 0, 0, fd, 0); }

}  // namespace fixture
