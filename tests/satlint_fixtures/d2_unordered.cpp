// Fixture: unordered-container iteration flowing into report output.
// Linted under a virtual src/io/ path so the ordered-output rule applies.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::string render_report(const std::unordered_map<std::string, double>& by_operator) {
  std::string out;
  for (const auto& [name, value] : by_operator) {  // hit: bucket-order iteration
    out += name + "," + std::to_string(value) + "\n";
  }
  return out;
}

std::size_t walk_prefixes() {
  std::unordered_set<std::string> prefixes;
  std::size_t n = 0;
  for (auto it = prefixes.begin(); it != prefixes.end(); ++it) ++n;  // hit: iterator walk
  return n;
}

double sum_ordered(const std::vector<double>& values) {
  double total = 0;
  for (const double v : values) total += v;  // clean: vector order is fixed
  return total;
}
