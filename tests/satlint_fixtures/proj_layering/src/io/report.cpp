// io is the presentation top: including stats is inside the matrix.
#include "stats/acc.hpp"

namespace satnet::io {

double report_total(const stats::Accumulator& acc) { return acc.total; }

}  // namespace satnet::io
