// Leaf module: geo may not include anything above it.
#pragma once

namespace satnet::geo {

struct Point {
  double lat = 0.0;
  double lon = 0.0;
};

double haversine_km(const Point& a, const Point& b);

}  // namespace satnet::geo
