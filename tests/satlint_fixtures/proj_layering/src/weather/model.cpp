// weather -> stats is outside the matrix, but this edge carries a
// justified allow — the suppression case for the layering rule.
// satlint:allow(layering): fixture — documents the sanctioned-inversion path
#include "stats/acc.hpp"

namespace satnet::weather {

double attenuation_total(const stats::Accumulator& acc) { return acc.total; }

}  // namespace satnet::weather
