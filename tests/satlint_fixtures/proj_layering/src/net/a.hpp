// Half of an intra-module include cycle (a -> b -> a). Same module, so
// the DAG matrix is silent — the cycle check has to catch it.
#pragma once

#include "net/b.hpp"

namespace satnet::net {

struct LinkA {
  int peer_of_b = 0;
};

}  // namespace satnet::net
