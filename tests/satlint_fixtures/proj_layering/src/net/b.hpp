// Other half of the include cycle.
#pragma once

#include "net/a.hpp"

namespace satnet::net {

struct LinkB {
  int peer_of_a = 0;
};

}  // namespace satnet::net
