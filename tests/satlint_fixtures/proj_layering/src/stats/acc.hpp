// stats is a leaf module — this include inverts the DAG (hit).
#pragma once

#include "geo/geom.hpp"

namespace satnet::stats {

struct Accumulator {
  double total = 0.0;
  void add(const geo::Point& p) { total += p.lat; }
};

}  // namespace satnet::stats
