// Fixture: ad-hoc fault toggles. Linted under a virtual src/transport/
// path so the adhoc-inject rule applies; the same content under
// src/fault/ or bench/ must stay silent.
#include <cstddef>
#include <string>

namespace fixture {

struct Config {
  bool inject_loss = false;  // hit: fault toggle living outside fault::
  double loss = 0.0;
};

double sample(const Config& cfg, double base) {
  if (cfg.inject_loss) {  // hit: ad-hoc branch instead of fault::Hook
    return base + cfg.loss;
  }
  // Clean: talking about "injection" in a comment is fine.
  const std::string label = "inject_me_not";  // clean: string literal
  (void)label;
  return base;
}

// Clean: the fault module's own exception type is CamelCase, not a flag.
class InjectedShardFailure {};

// satlint:allow(adhoc-inject): migration shim removed once callers move to fault::Hook
bool inject_legacy_toggle() { return false; }  // suppressed by the allow

}  // namespace fixture
