// Fixture: raw string literals must neither mask real violations nor
// fabricate phantom ones. Linted under a virtual src/sim/ path.
//
// Two failure directions for a sanitizer:
//   * mask      — violation-looking text INSIDE a raw string fires a
//                 rule (the string contents were not blanked);
//   * fabricate — a mis-scanned terminator leaves the lexer inside (or
//                 outside) the literal, so real code after the string
//                 is swallowed (hiding the one genuine violation below)
//                 or string text leaks into the code channel.
#include <cstdlib>
#include <string>

// Plain raw string: contents look like D1 hits but must stay inert.
const char* kPlain = R"(rand(); srand(7); std::random_device rd;)";

// Encoding-prefixed raw strings (u8R / uR / UR / LR) — the prefix must
// be recognized or the 'R' is read as an identifier tail and the quote
// opens an ordinary string with very different escape rules.
const char* kU8 = u8R"(std::chrono::steady_clock::now())";
const char16_t* kU16 = uR"(time(nullptr))";
const char32_t* kU32 = UR"(__DATE__ __TIME__)";
const wchar_t* kWide = LR"(mmap(nullptr, 0, 0, 0, -1, 0))";

// Delimited raw string containing `)"` — the naive terminator. If the
// scanner ends the literal there, everything up to the real terminator
// (including the rand() below) is treated as code or swallowed.
const char* kDelimited = R"tag(a quote: )" and more rand() text)tag";

// An ordinary string right after, to catch off-by-one resynchronization.
const std::string kAfter = "srand inside a plain string";

int genuinely_bad() {
  return rand();  // hit: the single real violation in this file
}
