// Fixture: the escape hatch. A justified allow suppresses; an allow with
// no justification is itself a violation (bad-allow) and does NOT
// suppress the underlying finding.
#include <chrono>
#include <cstdlib>

long telemetry_ok() {
  // satlint:allow(nondet-source): wall-clock telemetry only; asserted never to reach results
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

int trailing_ok() {
  return std::rand();  // satlint:allow(nondet-source): fixture exercising trailing allows
}

int unjustified_bad() {
  // satlint:allow(nondet-source)
  return std::rand();
}
