// Fixture: Rng discipline inside sharded code. Linted under a virtual
// src/runtime/ path so the raw-rng rule applies.
#include <cstdint>

#include "stats/rng.hpp"

using satnet::stats::Rng;

double shard_body_bad(std::uint64_t shard_index) {
  Rng rng(shard_index);  // hit: seed construction inside sharded code
  return rng.uniform();
}

double shard_body_good(const Rng& master, std::uint64_t shard_index) {
  Rng rng = master.fork_stable(shard_index);  // clean: stable fork
  return rng.uniform();
}

double shard_body_temp(std::uint64_t seed) {
  return Rng(seed).uniform();  // hit: temporary seeded in place
}
