// Fixture: every D1 nondeterminism source fires once. Never compiled —
// this file is linter input only (and whitelisted from the tree scan).
#include <chrono>
#include <cstdlib>
#include <random>

int seed_from_wall_clock() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // two hits: srand + time seed
  return std::rand();                                // hit: rand()
}

double entropy_sample() {
  std::random_device rd;  // hit: random_device
  return static_cast<double>(rd());
}

long stamp_ms() {
  const auto t = std::chrono::system_clock::now();  // hit: clock read
  return std::chrono::duration_cast<std::chrono::milliseconds>(t.time_since_epoch())
      .count();
}

const char* build_stamp() { return __DATE__ " " __TIME__; }  // hit: build stamp
