// Carries an allow that suppresses nothing: the stale-allow meta-rule
// must flag it in a tree scan (and only in a tree scan).
namespace satnet::synth {

int tuned_depth() {
  // satlint:allow(unordered-iter): fixture — nothing on this line iterates anything
  return 3;
}

}  // namespace satnet::synth
