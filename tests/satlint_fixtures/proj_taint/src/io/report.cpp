// Report path calling into the obs clock facade: the laundered-clock
// case the per-file rules cannot see.
#include "obs/clock.hpp"

namespace satnet::io {

double report_elapsed() {
  return obs::wall_ms();  // hit: tainted callee on a report path
}

unsigned long long report_stamp() {
  return obs::stamp_ms();  // clean: the root is sanctioned
}

}  // namespace satnet::io
