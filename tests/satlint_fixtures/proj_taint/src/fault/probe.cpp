// Not a report path: the same tainted call is fine here — injection
// timing is diagnostics, not artifact content.
#include "obs/clock.hpp"

namespace satnet::fault {

double probe_elapsed() { return obs::wall_ms(); }

}  // namespace satnet::fault
