#include "obs/clock.hpp"

#include <chrono>

namespace satnet::obs {

double wall_ms() {
  // Unsanctioned taint root: the clock-boundary auto-allow quiets the
  // per-file rule here, but callers on report paths must still fire.
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t stamp_ms() {
  // satlint:allow(nondet-taint): fixture — telemetry-only stamp, callers inherit the sanction
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
}

}  // namespace satnet::obs
