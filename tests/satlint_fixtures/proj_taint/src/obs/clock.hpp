// Telemetry clock facade. obs owns the monotonic clock (the per-file
// clock-boundary suppression), but the taint rule still tracks what
// flows out of here into report paths.
#pragma once

#include <cstdint>

namespace satnet::obs {

/// Milliseconds since the process epoch — tainted by steady_clock.
double wall_ms();

/// Same read, but the root carries an allow(nondet-taint): callers are
/// sanctioned wholesale.
std::uint64_t stamp_ms();

}  // namespace satnet::obs
