#include <gtest/gtest.h>

#include <algorithm>

#include "bgp/as_graph.hpp"
#include "bgp/coverage.hpp"
#include "bgp/routeviews.hpp"
#include "bgp/sno_world.hpp"

namespace satnet::bgp {
namespace {

// --------------------------------------------------------------- graph

TEST(AsGraphTest, AddAndLookup) {
  AsGraph g;
  g.add_as({14593, "Starlink", "US", 3});
  EXPECT_TRUE(g.contains(14593));
  EXPECT_EQ(g.info(14593).name, "Starlink");
  EXPECT_THROW(g.info(1), std::out_of_range);
}

TEST(AsGraphTest, EdgeRequiresBothEndpoints) {
  AsGraph g;
  g.add_as({1, "a", "US", 1});
  EXPECT_THROW(g.add_edge(1, 2, Relationship::peer_peer), std::invalid_argument);
}

TEST(AsGraphTest, DegreeCountsAllEdges) {
  AsGraph g;
  for (Asn a : {1u, 2u, 3u, 4u}) g.add_as({a, "x", "US", 2});
  g.add_edge(1, 2, Relationship::peer_peer);
  g.add_edge(1, 3, Relationship::customer_provider);
  g.add_edge(1, 4, Relationship::customer_provider);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.degree(99), 0u);
}

TEST(AsGraphTest, ProvidersAreDirectional) {
  AsGraph g;
  g.add_as({1, "cust", "US", 3});
  g.add_as({2, "prov", "US", 1});
  g.add_edge(1, 2, Relationship::customer_provider);
  EXPECT_EQ(g.providers(1), std::vector<Asn>{2});
  EXPECT_TRUE(g.providers(2).empty());
}

TEST(AsGraphTest, NeighborCountries) {
  AsGraph g;
  g.add_as({1, "sno", "US", 3});
  g.add_as({2, "a", "SE", 1});
  g.add_as({3, "b", "SE", 1});
  g.add_as({4, "c", "JP", 2});
  g.add_edge(1, 2, Relationship::customer_provider);
  g.add_edge(1, 3, Relationship::peer_peer);
  g.add_edge(1, 4, Relationship::peer_peer);
  const auto countries = g.neighbor_countries(1);
  EXPECT_EQ(countries.size(), 2u);
  EXPECT_TRUE(countries.count("SE"));
  EXPECT_TRUE(countries.count("JP"));
}

// ----------------------------------------------------------- sno world

TEST(SnoWorldTest, SnapshotYearsValid) {
  EXPECT_NO_THROW(sno_world_graph(2021));
  EXPECT_NO_THROW(sno_world_graph(2023));
  EXPECT_THROW(sno_world_graph(2019), std::invalid_argument);
  EXPECT_THROW(sno_world_graph(2024), std::invalid_argument);
}

TEST(SnoWorldTest, StarlinkPeeringGrowsExplosively) {
  const auto g21 = sno_world_graph(2021);
  const auto g23 = sno_world_graph(2023);
  EXPECT_GE(g23.degree(kStarlink), 3 * g21.degree(kStarlink));
}

TEST(SnoWorldTest, HughesNetStagnant) {
  EXPECT_EQ(sno_world_graph(2021).degree(kHughes), sno_world_graph(2023).degree(kHughes));
}

TEST(SnoWorldTest, ViasatExpandsBeyondUs) {
  const auto countries21 = sno_world_graph(2021).neighbor_countries(kViasat);
  const auto countries23 = sno_world_graph(2023).neighbor_countries(kViasat);
  EXPECT_EQ(countries21.size(), 1u);  // US only
  EXPECT_GT(countries23.size(), 3u);  // global
}

TEST(SnoWorldTest, MarlinkSwapsLevel3ForCogent) {
  const auto g21 = sno_world_graph(2021);
  const auto g22 = sno_world_graph(2022);
  const auto n21 = g21.neighbors(kMarlink);
  const auto n22 = g22.neighbors(kMarlink);
  EXPECT_NE(std::find(n21.begin(), n21.end(), 3549u), n21.end());
  EXPECT_EQ(std::find(n21.begin(), n21.end(), 174u), n21.end());
  EXPECT_EQ(std::find(n22.begin(), n22.end(), 3549u), n22.end());
  EXPECT_NE(std::find(n22.begin(), n22.end(), 174u), n22.end());
}

TEST(SnoWorldTest, OneWebHasExactlyTwoUsUpstreams2023) {
  const auto g = sno_world_graph(2023);
  const auto providers = g.providers(kOneWeb);
  EXPECT_EQ(providers.size(), 2u);
  for (const Asn p : providers) EXPECT_EQ(g.info(p).country, "US");
}

TEST(SnoWorldTest, HellasSatHasNoTier1) {
  const auto g = sno_world_graph(2023);
  for (const Asn n : g.neighbors(kHellasSat)) {
    EXPECT_GT(g.info(n).tier, 1) << "AS" << n;
  }
}

TEST(SnoWorldTest, KacificWellConnectedAndSellsToSmallIsps) {
  const auto g = sno_world_graph(2023);
  int tier1 = 0, smaller = 0;
  const std::size_t own = g.degree(kKacific);
  for (const Asn n : g.neighbors(kKacific)) {
    if (g.info(n).tier == 1) ++tier1;
    if (g.degree(n) < own) ++smaller;
  }
  EXPECT_GE(tier1, 2);    // paper: connected to multiple tier-1s
  EXPECT_GE(smaller, 2);  // paper: peers with small regional ISPs
}

TEST(SnoWorldTest, Tier1DegreesDominateSnos) {
  const auto g = sno_world_graph(2023);
  EXPECT_GT(g.degree(3356), g.degree(kStarlink));
  EXPECT_GT(g.degree(1299), g.degree(kHughes));
}

// ----------------------------------------------------------- routeviews

TEST(RouteViewsTest, FullVisibilityPreservesGraph) {
  const auto truth = sno_world_graph(2023);
  stats::Rng rng(1);
  const auto seen = observe_routeviews(truth, rng, 1.0);
  EXPECT_EQ(seen.edge_count(), truth.edge_count());
  EXPECT_EQ(seen.as_count(), truth.as_count());
}

TEST(RouteViewsTest, CustomerProviderEdgesAlwaysVisible) {
  const auto truth = sno_world_graph(2023);
  stats::Rng rng(2);
  const auto seen = observe_routeviews(truth, rng, 0.0);
  std::size_t cp = 0;
  for (const auto& e : truth.edges()) {
    if (e.rel == Relationship::customer_provider) ++cp;
  }
  EXPECT_EQ(seen.edge_count(), cp);
}

TEST(RouteViewsTest, PartialVisibilityDropsSomePeerEdges) {
  const auto truth = sno_world_graph(2023);
  stats::Rng rng(3);
  const auto seen = observe_routeviews(truth, rng, 0.5);
  EXPECT_LT(seen.edge_count(), truth.edge_count());
  EXPECT_GT(seen.edge_count(), truth.edge_count() / 2);
}

TEST(RouteViewsTest, DescribePeeringMentionsUpstreams) {
  const auto g = sno_world_graph(2023);
  const std::string text = describe_peering(g, kStarlink);
  EXPECT_NE(text.find("Starlink"), std::string::npos);
  EXPECT_NE(text.find("Lumen/Level3"), std::string::npos);
  EXPECT_NE(text.find("likely upstream"), std::string::npos);
}

// ------------------------------------------------------------- coverage

TEST(CoverageTest, StarlinkCoverageUnderestimatesCountries) {
  const auto g = sno_world_graph(2023);
  const auto footprints = known_footprints();
  const auto* starlink_fp = &footprints[0];
  ASSERT_EQ(starlink_fp->asn, kStarlink);
  const auto report = infer_coverage(g, kStarlink, starlink_fp->footprint);
  EXPECT_EQ(report.truth_countries, 30u);
  // Paper: 10 of 30 countries discovered; shape target is a substantial
  // under-estimate, not exactness.
  EXPECT_GE(report.discovered.size(), 6u);
  EXPECT_LE(report.discovered.size(), 16u);
  // City-level coverage is much higher (US PoPs dominate): ~74%.
  EXPECT_GT(report.city_coverage(), 0.45);
}

TEST(CoverageTest, HellasSatFullyDiscovered) {
  const auto g = sno_world_graph(2023);
  const auto report = infer_coverage(g, kHellasSat, known_footprints()[2].footprint);
  EXPECT_EQ(report.discovered.size(), 2u);  // paper: 2 out of 2
  EXPECT_DOUBLE_EQ(report.city_coverage(), 1.0);
}

TEST(CoverageTest, SesPartialDiscovery) {
  const auto g = sno_world_graph(2023);
  const auto report = infer_coverage(g, kSes, known_footprints()[1].footprint);
  EXPECT_EQ(report.truth_countries, 22u);
  EXPECT_GT(report.discovered.size(), 2u);
  EXPECT_LT(report.discovered.size(), 15u);
}

TEST(CoverageTest, EmptyFootprintYieldsZeroes) {
  const auto g = sno_world_graph(2023);
  const auto report = infer_coverage(g, kStarlink, {});
  EXPECT_EQ(report.truth_countries, 0u);
  EXPECT_DOUBLE_EQ(report.country_recall(), 0.0);
  EXPECT_DOUBLE_EQ(report.city_coverage(), 0.0);
}

class SnapshotYearParam : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotYearParam, GraphWellFormed) {
  const auto g = sno_world_graph(GetParam());
  EXPECT_GT(g.as_count(), 40u);
  EXPECT_GT(g.edge_count(), 50u);
  // Every edge endpoint resolves.
  for (const auto& e : g.edges()) {
    EXPECT_NO_THROW(g.info(e.a));
    EXPECT_NO_THROW(g.info(e.b));
  }
}

INSTANTIATE_TEST_SUITE_P(Years, SnapshotYearParam, ::testing::Values(2021, 2022, 2023));

}  // namespace
}  // namespace satnet::bgp
