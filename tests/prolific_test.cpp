#include <gtest/gtest.h>

#include "prolific/addon.hpp"
#include "stats/summary.hpp"
#include "prolific/census.hpp"
#include "synth/world.hpp"

namespace satnet::prolific {
namespace {

const TesterPool& pool() {
  static const TesterPool p;
  return p;
}

const synth::World& world() {
  static const synth::World w;
  return w;
}

// ---------------------------------------------------------------- census

TEST(CensusTest, PoolPopulationMatchesPaper) {
  EXPECT_EQ(pool().testers().size(), 14371u);
}

TEST(CensusTest, FunnelNumbersMatchPaperShape) {
  stats::Rng rng(1);
  const CensusOutcome out = pool().run_census(rng);
  EXPECT_EQ(out.prescreen_claimed, 160u);      // paper: 160 prescreened
  EXPECT_NEAR(out.prescreen_responded, 30.0, 10.0);  // paper: 30 respondents
  EXPECT_EQ(out.prescreen_verified, 20u);      // paper: 20 verified
  EXPECT_EQ(out.open_participants, 14371u);    // paper: 14,371
  EXPECT_EQ(out.open_verified, 57u);           // paper: 57
}

TEST(CensusTest, VerifiedSplitAcrossThreeSnos) {
  stats::Rng rng(2);
  const CensusOutcome out = pool().run_census(rng);
  ASSERT_EQ(out.verified_by_sno.size(), 3u);
  std::size_t total = 0;
  for (const auto& [sno, n] : out.verified_by_sno) total += n;
  EXPECT_EQ(total, 57u);
  EXPECT_GT(out.verified_by_sno.at("starlink"), out.verified_by_sno.at("hughesnet"));
}

TEST(CensusTest, SatisfactionShapesMatchFig14) {
  const auto hist = pool().satisfaction_histogram();
  const auto& starlink = hist.at("starlink");
  const auto& hughes = hist.at("hughesnet");
  // Starlink skews good/very-good.
  EXPECT_GT(starlink[3] + starlink[4], starlink[0] + starlink[1] + starlink[2]);
  // HughesNet never rates "very good" strongly and peaks at "ok" or below.
  EXPECT_EQ(hughes[4], 0u);
  std::size_t hughes_total = 0;
  for (const auto v : hughes) hughes_total += v;
  EXPECT_GT(hughes[2] + hughes[1] + hughes[0], hughes_total / 2);
}

TEST(CensusTest, RecruitQuotasRespected) {
  EXPECT_EQ(pool().recruitable("starlink", 10).size(), 10u);
  EXPECT_EQ(pool().recruitable("hughesnet", 5).size(), 5u);
  EXPECT_EQ(pool().recruitable("viasat", 5).size(), 5u);
  EXPECT_TRUE(pool().recruitable("oneweb", 5).empty());
}

TEST(CensusTest, RecruitsAreVerifiedAndWilling) {
  for (const Tester* t : pool().recruitable("starlink", 10)) {
    EXPECT_TRUE(t->connects_via_sno);
    EXPECT_TRUE(t->accepts_jobs);
  }
}

TEST(CensusTest, StarlinkTestersSpanContinents) {
  std::set<geo::Continent> continents;
  for (const Tester* t : pool().recruitable("starlink", 10)) {
    continents.insert(geo::continent_of(t->country));
  }
  EXPECT_TRUE(continents.count(geo::Continent::north_america));
  EXPECT_TRUE(continents.count(geo::Continent::europe));
  EXPECT_TRUE(continents.count(geo::Continent::oceania));
}

// ----------------------------------------------------------------- addon

TEST(AddonTest, SingleRunProducesAllExperiments) {
  stats::Rng rng(3);
  const Tester* t = pool().recruitable("starlink", 1).front();
  const AddonRunReport r = run_addon_once(world(), *t, 86400.0, rng);
  EXPECT_EQ(r.sno, "starlink");
  EXPECT_GT(r.speedtest.down_mbps, 0.0);
  EXPECT_GT(r.speedtest.up_mbps, 0.0);
  EXPECT_EQ(r.cdn.size(), 5u);
  EXPECT_GT(r.akamai.h1_plt_ms, 0.0);
  EXPECT_GT(r.akamai.h2_plt_ms, 0.0);
  EXPECT_FALSE(r.dns_lookup_ms.empty());
  EXPECT_GT(r.youtube.median_megapixels, 0.0);
}

TEST(AddonTest, StarlinkLatencyMatchesPopRtt) {
  stats::Rng rng(4);
  const Tester* t = pool().recruitable("starlink", 1).front();
  const AddonRunReport r = run_addon_once(world(), *t, 0.0, rng);
  // Paper Fig 9c: Starlink fast.com latency 35-49 ms.
  EXPECT_GT(r.speedtest.latency_ms, 25.0);
  EXPECT_LT(r.speedtest.latency_ms, 90.0);
}

TEST(AddonTest, GeoSpeedtestLatencyAbove500) {
  stats::Rng rng(5);
  for (const char* sno : {"hughesnet", "viasat"}) {
    const Tester* t = pool().recruitable(sno, 1).front();
    const AddonRunReport r = run_addon_once(world(), *t, 0.0, rng);
    EXPECT_GT(r.speedtest.latency_ms, 450.0) << sno;
  }
}

TEST(AddonTest, StudyRunCountsMatchDesign) {
  StudyConfig cfg;
  cfg.runs_per_tester = 2;  // keep the test quick
  const auto reports = run_addon_study(world(), pool(), cfg);
  EXPECT_EQ(reports.size(), (10u + 5u + 5u) * 2u);
  std::map<std::string, int> by_sno;
  for (const auto& r : reports) ++by_sno[r.sno];
  EXPECT_EQ(by_sno["starlink"], 20);
  EXPECT_EQ(by_sno["hughesnet"], 10);
  EXPECT_EQ(by_sno["viasat"], 10);
}

TEST(AddonTest, HughesNetNeverExceedsAdvertisedFraction) {
  // Paper: HughesNet testers never saw more than ~3 Mbps down.
  stats::Rng rng(6);
  for (const Tester* t : pool().recruitable("hughesnet", 5)) {
    const AddonRunReport r = run_addon_once(world(), *t, 43200.0, rng);
    EXPECT_LT(r.speedtest.down_mbps, 8.0);
  }
}

TEST(AddonTest, DnsMediansOrderedStarlinkHughesViasat) {
  // Paper Fig 10c: 130 ms (Starlink) < 755 ms (HughesNet) < 985 ms (Viasat).
  stats::Rng rng(7);
  std::map<std::string, std::vector<double>> lookups;
  for (const char* sno : {"starlink", "hughesnet", "viasat"}) {
    for (const Tester* t : pool().recruitable(sno, 3)) {
      const auto r = run_addon_once(world(), *t, 7200.0, rng);
      lookups[sno].insert(lookups[sno].end(), r.dns_lookup_ms.begin(),
                          r.dns_lookup_ms.end());
    }
  }
  const double sl = stats::median(lookups["starlink"]);
  const double hn = stats::median(lookups["hughesnet"]);
  const double vs = stats::median(lookups["viasat"]);
  EXPECT_LT(sl, hn);
  EXPECT_LT(hn, vs);
}

TEST(AddonTest, FastlyFastestCdnForEverySno) {
  stats::Rng rng(8);
  for (const char* sno : {"starlink", "viasat"}) {
    const Tester* t = pool().recruitable(sno, 1).front();
    // Average a few runs: a single fetch is noisy.
    std::map<std::string, double> total;
    for (int i = 0; i < 5; ++i) {
      const auto r = run_addon_once(world(), *t, i * 86400.0, rng);
      for (const auto& c : r.cdn) total[c.cdn] += c.minified_ms;
    }
    for (const auto& [cdn, sum] : total) {
      if (cdn == "fastly") continue;
      EXPECT_LE(total["fastly"], sum * 1.15) << sno << " vs " << cdn;
    }
  }
}

}  // namespace
}  // namespace satnet::prolific
