// Scenario-matrix harness: sweep seeded generated worlds through the
// cross-cutting invariant catalog (thread-identity, ablation-identity,
// flow-conservation, monotone-degradation, finite-metrics), and prove
// the harness itself works by planting mutations that each invariant
// must catch — shrinking the failing world to a minimal printable spec.
//
// Budget knobs (env):
//   SATNET_MATRIX_WORLDS       worlds in the sweep (default 6; the
//                              verify.sh --matrix gate raises this)
//   SATNET_MATRIX_FAILURE_DIR  where minimal failing specs are written
//                              (default ./matrix_failures)
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "fault/hook.hpp"
#include "matrix/eval.hpp"
#include "matrix/invariants.hpp"
#include "matrix/shrink.hpp"
#include "orbit/timeline.hpp"
#include "synth/worldgen.hpp"

namespace satnet {
namespace {

using matrix::CheckOptions;
using matrix::InvariantViolation;
using matrix::Mutation;
using synth::ScenarioSpec;

std::size_t env_count(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0' || v == 0) return fallback;
  return static_cast<std::size_t>(v);
}

std::filesystem::path failure_dir() {
  const char* env = std::getenv("SATNET_MATRIX_FAILURE_DIR");
  return (env != nullptr && *env != '\0') ? std::filesystem::path(env)
                                          : std::filesystem::path("matrix_failures");
}

/// The sweep's seed schedule: a fixed affine sequence so failure seeds
/// printed by one run mean the same world in the next.
std::uint64_t sweep_seed(std::size_t i) { return 1000003ull * (i + 1) + 17ull; }

/// Writes the minimal failing spec (plus the one-line repro) to stderr
/// and to <failure_dir>/seed-<seed>.txt, returning the artifact path.
std::filesystem::path report_failure(const ScenarioSpec& original,
                                     const InvariantViolation& violation,
                                     const ScenarioSpec& minimal) {
  const std::filesystem::path dir = failure_dir();
  std::filesystem::create_directories(dir);
  const std::filesystem::path path =
      dir / ("seed-" + std::to_string(original.seed) + ".txt");
  std::string text;
  text += "invariant: " + violation.invariant + "\n";
  text += "detail: " + violation.detail + "\n";
  text += "repro: ./build/examples/satnetctl world --seed " +
          std::to_string(original.seed) + " --check\n";
  text += "original: " + original.summary() + "\n";
  text += "minimal: " + minimal.summary() + "\n";
  text += "minimal spec:\n" + minimal.to_text();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  out.close();
  std::cerr << "[matrix] invariant violation (artifact: " << path.string() << ")\n"
            << text;
  return path;
}

/// Shrinks a failing spec against the same check that caught it, then
/// reports. Kept small: the predicate re-runs the full check per
/// candidate, so the options passed in should be the cheapest ones that
/// still reproduce the violation.
std::filesystem::path shrink_and_report(const ScenarioSpec& spec,
                                        const InvariantViolation& violation,
                                        const CheckOptions& options) {
  const matrix::ShrinkResult shrunk = matrix::shrink_spec(
      spec,
      [&](const ScenarioSpec& candidate) {
        const auto v = matrix::check_spec(candidate, options);
        return v.has_value() && v->invariant == violation.invariant;
      },
      48);
  return report_failure(spec, violation, shrunk.spec);
}

class MatrixTest : public ::testing::Test {
 protected:
  void TearDown() override {
    orbit::EpochTimeline::clear_installed();
    fault::Hook::clear();
  }
};

// ----------------------------------------------------------------- sweep

// The PR-gate sweep: every generated world satisfies the whole invariant
// catalog. verify.sh --matrix runs the same binary with a bigger budget.
TEST_F(MatrixTest, InvariantsHoldAcrossSeededWorlds) {
  const std::size_t n_worlds = env_count("SATNET_MATRIX_WORLDS", 6);
  std::cerr << "[matrix] sweeping " << n_worlds << " worlds\n";
  std::set<std::string> distinct;
  for (std::size_t i = 0; i < n_worlds; ++i) {
    const std::uint64_t seed = sweep_seed(i);
    SCOPED_TRACE("world seed=" + std::to_string(seed));
    const ScenarioSpec spec = synth::generate_scenario(seed);
    distinct.insert(spec.to_text());
    const auto violation = matrix::check_spec(spec);
    if (violation.has_value()) {
      shrink_and_report(spec, *violation, CheckOptions{});
      ADD_FAILURE() << violation->invariant << ": " << violation->detail
                    << " (seed " << seed << ")";
    }
    orbit::EpochTimeline::clear_installed();
  }
  EXPECT_EQ(distinct.size(), n_worlds) << "seeds must generate distinct worlds";
}

// The orbit-model axis must actually reach the PR-gate sweep: at least
// one of the default six worlds runs the SGP4 backend, so every sweep
// exercises perturbed propagation end to end (generation, evaluation,
// the finite-metrics invariant) and not just closed-form Walker. Pinned
// against the default budget — raising SATNET_MATRIX_WORLDS only adds
// coverage, it can't remove this world.
TEST_F(MatrixTest, DefaultSweepCoversSgp4World) {
  std::size_t sgp4_worlds = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    const std::uint64_t seed = sweep_seed(i);
    const ScenarioSpec spec = synth::generate_scenario(seed);
    if (spec.networks.empty() ||
        spec.networks.front().model != orbit::OrbitModel::sgp4) {
      continue;
    }
    ++sgp4_worlds;
    SCOPED_TRACE("sgp4 world seed=" + std::to_string(seed));
    EXPECT_NE(spec.to_text().find("model=sgp4"), std::string::npos)
        << "spec text must record the ephemeris backend";
    const auto violation = matrix::check_spec(spec);
    EXPECT_FALSE(violation.has_value())
        << (violation ? violation->invariant + ": " + violation->detail : "");
    orbit::EpochTimeline::clear_installed();
  }
  EXPECT_GE(sgp4_worlds, 1u)
      << "the default sweep no longer draws an SGP4-mode world; adjust the "
         "seed schedule or the orbit-model axis so both backends stay covered";
}

// A degenerate shell (zero planes / zero sats-per-plane) used to divide
// by zero inside Constellation::position and leak NaN into campaign
// reports, where only the finite-metrics invariant would (maybe) notice.
// The guard now refuses to materialize the world at all: the matrix can
// never evaluate a spec whose ephemeris is undefined.
TEST_F(MatrixTest, DegenerateShellRefusesToMaterialize) {
  ScenarioSpec spec = synth::generate_scenario(sweep_seed(0));
  ASSERT_FALSE(spec.networks.empty());
  ASSERT_FALSE(spec.networks.front().shells.empty());
  spec.networks.front().shells.front().planes = 0;
  EXPECT_THROW(synth::GeneratedWorld{spec}, std::invalid_argument);
  spec = synth::generate_scenario(sweep_seed(0));
  spec.networks.front().shells.front().sats_per_plane = 0;
  EXPECT_THROW(synth::GeneratedWorld{spec}, std::invalid_argument);
}

// --------------------------------------------------------- determinism

TEST_F(MatrixTest, SameSeedSameSpecText) {
  for (const std::uint64_t seed : {3ull, 71ull, 424242ull}) {
    const ScenarioSpec a = synth::generate_scenario(seed);
    const ScenarioSpec b = synth::generate_scenario(seed);
    EXPECT_EQ(a.to_text(), b.to_text()) << "seed " << seed;
    EXPECT_NE(a.to_text().find("seed " + std::to_string(seed)), std::string::npos);
    EXPECT_GT(a.total_satellites(), 0u);
    EXPECT_GT(a.total_gateways(), 0u);
  }
  EXPECT_NE(synth::generate_scenario(3).to_text(), synth::generate_scenario(4).to_text());
}

TEST_F(MatrixTest, ReportIsPureFunctionOfSpec) {
  // Two independent materializations of the same spec, evaluated at
  // different thread counts, must produce byte-identical reports — the
  // run-to-run half of the "same seed, same campaign report" contract.
  const ScenarioSpec spec = synth::generate_scenario(5);
  const synth::GeneratedWorld first(spec);
  const synth::GeneratedWorld second(spec);
  matrix::EvalOptions one;
  one.threads = 1;
  matrix::EvalOptions three;
  three.threads = 3;
  const matrix::WorldEval a = matrix::evaluate_world(first, one);
  orbit::EpochTimeline::clear_installed();
  const matrix::WorldEval b = matrix::evaluate_world(second, three);
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.ok_bits, b.ok_bits);
  EXPECT_EQ(a.metrics, b.metrics);
}

// --------------------------------------------------------- widen_plan

TEST_F(MatrixTest, WidenedPlansAreNestedSupersets) {
  fault::GenerateConfig cfg;
  cfg.horizon_sec = 3600;
  cfg.gateway_outages = 4;
  cfg.gateway_names = {"gw-a", "gw-b"};
  cfg.handoff_storms = 2;
  cfg.loss_bursts = 3;
  cfg.weather_escalations = 2;
  const fault::FaultPlan base = fault::FaultPlan::generate(cfg, 99);
  const fault::FaultPlan mid = matrix::widen_plan(base, cfg.horizon_sec, 0.35);
  const fault::FaultPlan wide = matrix::widen_plan(base, cfg.horizon_sec, 0.7);
  ASSERT_EQ(base.size(), mid.size());
  ASSERT_EQ(base.size(), wide.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    const fault::FaultEvent& b = base.events()[i];
    const fault::FaultEvent& m = mid.events()[i];
    const fault::FaultEvent& w = wide.events()[i];
    EXPECT_EQ(b.t_start_sec, m.t_start_sec) << "widening must not move starts";
    EXPECT_EQ(b.t_start_sec, w.t_start_sec);
    if (b.kind == fault::EventKind::handoff_storm ||
        b.kind == fault::EventKind::shard_failure) {
      EXPECT_EQ(b.t_end_sec, m.t_end_sec)
          << "epoch-shaping and whole-run events must never widen";
      EXPECT_EQ(b.t_end_sec, w.t_end_sec);
    } else {
      EXPECT_LE(b.t_end_sec, m.t_end_sec);
      EXPECT_LE(m.t_end_sec, w.t_end_sec) << "windows must nest as fraction grows";
    }
  }
  EXPECT_NO_THROW(mid.validate());
  EXPECT_NO_THROW(wide.validate());
}

// ----------------------------------------------------------- mutations

// Each planted mutation must be caught by exactly the invariant that
// owns it, and the shrinker must reduce the failing world to the
// smallest spec that still trips it — the harness checking itself.

TEST_F(MatrixTest, ThreadStampMutantCaughtByThreadIdentity) {
  const ScenarioSpec spec = synth::generate_scenario(11);
  CheckOptions options;
  options.mutation = Mutation::thread_stamp;
  options.thread_counts = {1, 2};  // cheapest pair that still diverges
  options.widen_fractions.clear();
  const auto violation = matrix::check_spec(spec, options);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->invariant, "thread-identity");
  EXPECT_NE(violation->detail.find("threads=2"), std::string::npos) << violation->detail;

  // The stamp fails independently of world content, so the shrinker
  // should grind the spec down to the floor on every axis.
  const std::filesystem::path artifact = shrink_and_report(spec, *violation, options);
  ASSERT_TRUE(std::filesystem::exists(artifact));
  std::ifstream in(artifact, std::ios::binary);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("invariant: thread-identity"), std::string::npos);
  EXPECT_NE(text.find("satnetctl world --seed 11"), std::string::npos);

  const matrix::ShrinkResult shrunk = matrix::shrink_spec(
      spec,
      [&](const ScenarioSpec& candidate) {
        const auto v = matrix::check_spec(candidate, options);
        return v.has_value() && v->invariant == "thread-identity";
      },
      48);
  EXPECT_GT(shrunk.steps_accepted, 0u);
  EXPECT_EQ(shrunk.spec.terminals.size(), 1u);
  EXPECT_EQ(shrunk.spec.networks.size(), 1u);
  EXPECT_TRUE(shrunk.spec.faults.empty());
  EXPECT_LT(shrunk.spec.total_satellites(), spec.total_satellites());
}

TEST_F(MatrixTest, NanMetricMutantCaughtByFiniteMetrics) {
  const ScenarioSpec spec = synth::generate_scenario(12);
  CheckOptions options;
  options.mutation = Mutation::nan_metric;
  options.thread_counts = {1};  // NaN hides in metrics, not the report
  options.widen_fractions.clear();
  const auto violation = matrix::check_spec(spec, options);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->invariant, "finite-metrics");
  EXPECT_NE(violation->detail.find("matrix.zz_mutant"), std::string::npos)
      << violation->detail;
  // Same spec, mutation off: clean.
  CheckOptions clean = options;
  clean.mutation = Mutation::none;
  EXPECT_FALSE(matrix::check_spec(spec, clean).has_value());
}

TEST_F(MatrixTest, FlowBytesMutantCaughtByFlowConservation) {
  // The mutation skews terminal 0's TCP byte ledger, which only bites on
  // worlds where terminal 0 actually runs a flow — scan the sweep seeds
  // for one (deterministic: the same seed trips every run).
  CheckOptions options;
  options.mutation = Mutation::flow_bytes;
  options.thread_counts = {1};
  options.widen_fractions.clear();
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 30 && !caught; ++seed) {
    const ScenarioSpec spec = synth::generate_scenario(seed);
    const auto violation = matrix::check_spec(spec, options);
    orbit::EpochTimeline::clear_installed();
    if (!violation.has_value()) continue;
    ASSERT_EQ(violation->invariant, "flow-conservation") << "seed " << seed;
    EXPECT_NE(violation->detail.find("bytes_sent == bytes_acked + bytes_retrans"),
              std::string::npos);
    CheckOptions clean = options;
    clean.mutation = Mutation::none;
    EXPECT_FALSE(matrix::check_spec(spec, clean).has_value()) << "seed " << seed;
    caught = true;
  }
  EXPECT_TRUE(caught) << "no seed in 1..30 exercised terminal 0's flow path";
}

}  // namespace
}  // namespace satnet
