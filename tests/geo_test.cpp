#include <gtest/gtest.h>

#include <cmath>

#include "geo/geodesy.hpp"
#include "geo/places.hpp"

namespace satnet::geo {
namespace {

// -------------------------------------------------------------- geodesy

TEST(GeodesyTest, DegRadRoundTrip) {
  EXPECT_NEAR(rad_to_deg(deg_to_rad(123.4)), 123.4, 1e-9);
  EXPECT_NEAR(deg_to_rad(180.0), 3.14159265358979, 1e-9);
}

TEST(GeodesyTest, EcefOnEquatorPrimeMeridian) {
  const Ecef e = to_ecef({0, 0, 0});
  EXPECT_NEAR(e.x, kEarthRadiusKm, 1e-6);
  EXPECT_NEAR(e.y, 0, 1e-6);
  EXPECT_NEAR(e.z, 0, 1e-6);
}

TEST(GeodesyTest, EcefAtNorthPole) {
  const Ecef e = to_ecef({90, 0, 0});
  EXPECT_NEAR(e.z, kEarthRadiusKm, 1e-6);
  EXPECT_NEAR(std::hypot(e.x, e.y), 0, 1e-6);
}

TEST(GeodesyTest, EcefAltitudeExtendsRadius) {
  const Ecef e = to_ecef({0, 0, 550});
  EXPECT_NEAR(e.x, kEarthRadiusKm + 550, 1e-6);
}

TEST(GeodesyTest, SurfaceDistanceSymmetric) {
  const GeoPoint a{40.7, -74.0, 0}, b{51.5, -0.1, 0};
  EXPECT_NEAR(surface_distance_km(a, b), surface_distance_km(b, a), 1e-9);
}

TEST(GeodesyTest, SurfaceDistanceKnownPair) {
  // New York to London: ~5570 km great circle.
  const double d = surface_distance_km({40.71, -74.01, 0}, {51.51, -0.13, 0});
  EXPECT_NEAR(d, 5570, 60);
}

TEST(GeodesyTest, SurfaceDistanceZeroForSamePoint) {
  EXPECT_NEAR(surface_distance_km({12, 34, 0}, {12, 34, 0}), 0, 1e-9);
}

TEST(GeodesyTest, AntipodalDistanceIsHalfCircumference) {
  const double d = surface_distance_km({0, 0, 0}, {0, 180, 0});
  EXPECT_NEAR(d, 3.14159265 * kEarthRadiusKm, 1.0);
}

TEST(GeodesyTest, SlantRangeOverheadSatellite) {
  // Satellite directly overhead: slant equals altitude.
  const double d = slant_range_km({10, 20, 0}, {10, 20, 550});
  EXPECT_NEAR(d, 550, 0.5);
}

TEST(GeodesyTest, SlantRangeChordLeqSurfacePath) {
  const GeoPoint a{0, 0, 0}, b{0, 90, 0};
  EXPECT_LT(slant_range_km(a, b), surface_distance_km(a, b));
}

TEST(GeodesyTest, ElevationOverheadIsNinety) {
  EXPECT_NEAR(elevation_deg({45, 45, 0}, {45, 45, 550}), 90.0, 0.01);
}

TEST(GeodesyTest, ElevationBelowHorizonIsNegative) {
  // Satellite on the opposite side of the planet.
  EXPECT_LT(elevation_deg({0, 0, 0}, {0, 180, 550}), 0.0);
}

TEST(GeodesyTest, GeoSlotElevationDropsWithLatitude) {
  const GeoPoint slot{0, -100, kGeoAltitudeKm};
  const double eq = elevation_deg({0, -100, 0}, slot);
  const double mid = elevation_deg({40, -100, 0}, slot);
  const double high = elevation_deg({65, -100, 0}, slot);
  EXPECT_GT(eq, mid);
  EXPECT_GT(mid, high);
  EXPECT_NEAR(eq, 90.0, 0.1);
}

TEST(GeodesyTest, RadioDelayMatchesLightSpeed) {
  EXPECT_NEAR(radio_delay_ms(299792.458), 1000.0, 1e-6);
  // GEO one-way up-leg: ~119 ms.
  EXPECT_NEAR(radio_delay_ms(35786.0), 119.4, 1.0);
}

TEST(GeodesyTest, FiberSlowerThanRadio) {
  EXPECT_GT(fiber_delay_ms(1000.0, 1.0), radio_delay_ms(1000.0));
}

TEST(GeodesyTest, FiberStretchScalesLinearly) {
  EXPECT_NEAR(fiber_delay_ms(1000, 2.0), 2 * fiber_delay_ms(1000, 1.0), 1e-9);
}

// --------------------------------------------------------------- places

TEST(PlacesTest, FindKnownCity) {
  const auto c = find_city("auckland");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->country_code, "NZ");
  EXPECT_NEAR(c->lat_deg, -36.85, 0.01);
}

TEST(PlacesTest, UnknownCityReturnsNullopt) {
  EXPECT_FALSE(find_city("atlantis").has_value());
}

TEST(PlacesTest, CityPointThrowsForUnknown) {
  EXPECT_THROW(city_point("atlantis"), std::out_of_range);
}

TEST(PlacesTest, EveryCityHasKnownCountry) {
  for (const auto& c : cities()) {
    EXPECT_TRUE(find_country(c.country_code).has_value())
        << c.name << " has unknown country " << c.country_code;
  }
}

TEST(PlacesTest, EveryCityCoordinateInRange) {
  for (const auto& c : cities()) {
    EXPECT_GE(c.lat_deg, -90.0);
    EXPECT_LE(c.lat_deg, 90.0);
    EXPECT_GE(c.lon_deg, -180.0);
    EXPECT_LE(c.lon_deg, 180.0);
  }
}

TEST(PlacesTest, ContinentLookup) {
  EXPECT_EQ(continent_of("NZ"), Continent::oceania);
  EXPECT_EQ(continent_of("US"), Continent::north_america);
  EXPECT_EQ(continent_of("DE"), Continent::europe);
  EXPECT_EQ(continent_of("CL"), Continent::south_america);
  EXPECT_EQ(continent_of("PH"), Continent::asia);
  EXPECT_THROW(continent_of("XX"), std::out_of_range);
}

TEST(PlacesTest, UsStatesHaveRegions) {
  for (const auto& s : us_states()) {
    EXPECT_FALSE(s.region.empty()) << s.code;
  }
  EXPECT_EQ(find_us_state("AK")->region, "Alaska");
  EXPECT_EQ(find_us_state("WA")->region, "Northwest");
  EXPECT_EQ(find_us_state("AZ")->region, "Southwest");
}

TEST(PlacesTest, Fig8aStatesPresent) {
  // Every state the paper's Figure 8a references must exist.
  for (const char* code : {"OR", "WA", "VA", "NY", "PA", "AZ", "AK", "NV"}) {
    EXPECT_TRUE(find_us_state(code).has_value()) << code;
  }
}

TEST(PlacesTest, StudyCitiesPresent) {
  // Cities the paper's narrative depends on.
  for (const char* name :
       {"seattle", "tokyo", "manila", "auckland", "sydney", "santiago",
        "frankfurt", "london", "amsterdam", "denver", "los angeles"}) {
    EXPECT_TRUE(find_city(name).has_value()) << name;
  }
}

TEST(PlacesTest, ManilaTokyoDistanceMatchesPaperScenario) {
  // The Philippines PoP detour: Manila to Tokyo is ~3,000 km.
  const double d = surface_distance_km(city_point("manila"), city_point("tokyo"));
  EXPECT_NEAR(d, 3000, 150);
}

TEST(PlacesTest, AnchorageSeattleDistanceMatchesPaperScenario) {
  // Paper: the Alaska probe's PoP (Seattle) is ~2,697 km away.
  const double d = surface_distance_km(city_point("anchorage"), city_point("seattle"));
  EXPECT_NEAR(d, 2290, 150);  // great-circle; the paper quotes road-ish distance
}

class ContinentParam
    : public ::testing::TestWithParam<std::pair<const char*, Continent>> {};

TEST_P(ContinentParam, MapsCorrectly) {
  EXPECT_EQ(continent_of(GetParam().first), GetParam().second);
}

INSTANTIATE_TEST_SUITE_P(
    Countries, ContinentParam,
    ::testing::Values(std::pair{"GB", Continent::europe},
                      std::pair{"FR", Continent::europe},
                      std::pair{"AU", Continent::oceania},
                      std::pair{"FJ", Continent::oceania},
                      std::pair{"JP", Continent::asia},
                      std::pair{"BR", Continent::south_america},
                      std::pair{"CA", Continent::north_america},
                      std::pair{"NG", Continent::africa}));

}  // namespace
}  // namespace satnet::geo
