// Cross-validation suite for the propagator layer: SGP4 vs published
// reference ephemeris vectors, BatchPropagator vs scalar bit-identity,
// TLE round-trips, and the orbit-layer bugfix regressions (visible()
// cone prefilter, zero-size shell validation, GEO sentinel ids).
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include <gtest/gtest.h>

#include "geo/geodesy.hpp"
#include "orbit/access.hpp"
#include "orbit/constellation.hpp"
#include "orbit/propagator.hpp"
#include "orbit/sgp4.hpp"
#include "orbit/timeline.hpp"

namespace satnet::orbit {
namespace {

std::uint64_t dbits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Pads a hand-written element line to 68 columns and appends its mod-10
/// checksum, so the fixtures below stay readable.
std::string ck(std::string line) {
  line.resize(68, ' ');
  return line + static_cast<char>('0' + tle_checksum(line));
}

// The two canonical Spacetrack Report #3 verification satellites
// (Hoots & Roehrich 1980; reproduced in Vallado et al., AIAA 2006-6753):
// a near-Earth SGP4 case and a high-eccentricity deep-space SDP4 case.
const std::string kStr3NearL1 =
    ck("1 88888U          80275.98708465  .00073094  13844-3  66816-4 0    8");
const std::string kStr3NearL2 =
    ck("2 88888  72.8435 115.9689 0086731  52.6988 110.5714 16.05824518  105");
const std::string kStr3DeepL1 =
    ck("1 11801U          80230.29629788  .01431103  00000-0  14311-1 0    1");
const std::string kStr3DeepL2 =
    ck("2 11801  46.7916 230.4354 7318036  47.4722  10.4117  2.28537848    1");

// ------------------------------------------------------------ TLE layer

TEST(TleTest, ParsesStr3Fields) {
  std::string err;
  const auto t = Tle::parse(kStr3NearL1, kStr3NearL2, "STR3 TEST", &err);
  ASSERT_TRUE(t.has_value()) << err;
  EXPECT_EQ(t->satnum, 88888u);
  EXPECT_EQ(t->name, "STR3 TEST");
  EXPECT_EQ(t->epochyr, 80);
  EXPECT_NEAR(t->epochdays, 275.98708465, 1e-9);
  EXPECT_NEAR(t->bstar, 0.66816e-4, 1e-12);
  EXPECT_NEAR(t->inclo_deg, 72.8435, 1e-9);
  EXPECT_NEAR(t->nodeo_deg, 115.9689, 1e-9);
  EXPECT_NEAR(t->ecco, 0.0086731, 1e-12);
  EXPECT_NEAR(t->argpo_deg, 52.6988, 1e-9);
  EXPECT_NEAR(t->mo_deg, 110.5714, 1e-9);
  EXPECT_NEAR(t->no_revs_per_day, 16.05824518, 1e-12);
  EXPECT_EQ(t->revnum, 105);
}

TEST(TleTest, RejectsBadChecksum) {
  std::string l1 = kStr3NearL1;
  l1.back() = (l1.back() == '0') ? '1' : '0';
  std::string err;
  EXPECT_FALSE(Tle::parse(l1, kStr3NearL2, "", &err).has_value());
  EXPECT_NE(err.find("checksum"), std::string::npos) << err;
}

TEST(TleTest, RejectsSatnumMismatch) {
  std::string err;
  EXPECT_FALSE(Tle::parse(kStr3NearL1, kStr3DeepL2, "", &err).has_value());
}

TEST(TleTest, ChecksumCountsMinusAsOne) {
  // Per the TLE spec, '-' contributes 1 and every other non-digit 0.
  EXPECT_EQ(tle_checksum("-"), 1);
  EXPECT_EQ(tle_checksum("19"), 0);
  EXPECT_EQ(tle_checksum("1 2-"), 4);
}

TEST(TleTest, ParseEmitParseRoundTrips) {
  for (const auto* pair :
       {&kStr3NearL1, &kStr3DeepL1}) {
    const bool near_case = pair == &kStr3NearL1;
    const std::string& l1 = near_case ? kStr3NearL1 : kStr3DeepL1;
    const std::string& l2 = near_case ? kStr3NearL2 : kStr3DeepL2;
    std::string err;
    const auto a = Tle::parse(l1, l2, "RT", &err);
    ASSERT_TRUE(a.has_value()) << err;
    const std::string e1 = a->emit_line1();
    const std::string e2 = a->emit_line2();
    ASSERT_EQ(e1.size(), 69u);
    ASSERT_EQ(e2.size(), 69u);
    const auto b = Tle::parse(e1, e2, a->name, &err);
    ASSERT_TRUE(b.has_value()) << err << "\n" << e1 << "\n" << e2;
    EXPECT_EQ(a->satnum, b->satnum);
    EXPECT_EQ(a->epochyr, b->epochyr);
    EXPECT_DOUBLE_EQ(a->epochdays, b->epochdays);
    EXPECT_DOUBLE_EQ(a->inclo_deg, b->inclo_deg);
    EXPECT_DOUBLE_EQ(a->nodeo_deg, b->nodeo_deg);
    EXPECT_DOUBLE_EQ(a->ecco, b->ecco);
    EXPECT_DOUBLE_EQ(a->argpo_deg, b->argpo_deg);
    EXPECT_DOUBLE_EQ(a->mo_deg, b->mo_deg);
    EXPECT_DOUBLE_EQ(a->no_revs_per_day, b->no_revs_per_day);
    EXPECT_NEAR(a->bstar, b->bstar, std::fabs(a->bstar) * 1e-5 + 1e-12);
    EXPECT_NEAR(a->ndot, b->ndot, std::fabs(a->ndot) * 1e-6 + 1e-12);
    EXPECT_EQ(a->revnum, b->revnum);
    EXPECT_EQ(a->elnum, b->elnum);
  }
}

TEST(TleTest, CatalogParsesGroupsAndComments) {
  const std::string text = "# catalog comment\nSTR3 TEST\n" + kStr3NearL1 + "\n" +
                           kStr3NearL2 + "\n\n" + kStr3DeepL1 + "\n" + kStr3DeepL2 +
                           "\n";
  std::string err;
  const auto cat = parse_tle_catalog(text, &err);
  ASSERT_TRUE(cat.has_value()) << err;
  ASSERT_EQ(cat->size(), 2u);
  EXPECT_EQ((*cat)[0].name, "STR3 TEST");
  EXPECT_EQ((*cat)[0].satnum, 88888u);
  EXPECT_EQ((*cat)[1].satnum, 11801u);
}

TEST(TleTest, CatalogFailsLoudlyOnMalformedSet) {
  std::string bad = kStr3NearL2;
  bad[10] = 'x';
  std::string err;
  EXPECT_FALSE(parse_tle_catalog(kStr3NearL1 + "\n" + bad + "\n", &err).has_value());
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------- SGP4 reference vectors

// Published TEME state vectors for the STR#3 verification cases (WGS-72
// constants). Positions are km, velocities km/s. Documented tolerance:
// 0.01 km / 1e-5 km/s. The reference digits below are the original
// STR#3 report printouts; Vallado's revised model (which this port
// follows) reproduces them to a few meters, and any structural error in
// the port (wrong J-term, resonance, or periodic) shows up at km scale,
// so the meter-level band still pins the math.
constexpr double kPosTolKm = 1e-2;
constexpr double kVelTolKmS = 1e-5;

TEST(Sgp4Test, NearEarthMatchesStr3ReferenceAtEpoch) {
  std::string err;
  const auto tle = Tle::parse(kStr3NearL1, kStr3NearL2, "", &err);
  ASSERT_TRUE(tle.has_value()) << err;
  const Sgp4 sat(*tle);
  EXPECT_FALSE(sat.deep_space());

  const auto s0 = sat.propagate(0.0);
  ASSERT_TRUE(s0.has_value());
  EXPECT_NEAR(s0->r[0], 2328.97048951, kPosTolKm);
  EXPECT_NEAR(s0->r[1], -5995.22076416, kPosTolKm);
  EXPECT_NEAR(s0->r[2], 1719.97067261, kPosTolKm);
  EXPECT_NEAR(s0->v[0], 2.91207230, kVelTolKmS);
  EXPECT_NEAR(s0->v[1], -0.98341546, kVelTolKmS);
  EXPECT_NEAR(s0->v[2], -7.09081703, kVelTolKmS);
}

TEST(Sgp4Test, NearEarthMatchesStr3ReferenceAfterSixHours) {
  std::string err;
  const auto tle = Tle::parse(kStr3NearL1, kStr3NearL2, "", &err);
  ASSERT_TRUE(tle.has_value()) << err;
  const Sgp4 sat(*tle);
  const auto s = sat.propagate(360.0);
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(s->r[0], 2456.10705566, kPosTolKm);
  EXPECT_NEAR(s->r[1], -6071.93853760, kPosTolKm);
  EXPECT_NEAR(s->r[2], 1222.89727783, kPosTolKm);
  EXPECT_NEAR(s->v[0], 2.67938992, kVelTolKmS);
  EXPECT_NEAR(s->v[1], -0.44829041, kVelTolKmS);
  EXPECT_NEAR(s->v[2], -7.22879231, kVelTolKmS);
}

TEST(Sgp4Test, DeepSpaceMatchesStr3ReferenceAtEpoch) {
  std::string err;
  const auto tle = Tle::parse(kStr3DeepL1, kStr3DeepL2, "", &err);
  ASSERT_TRUE(tle.has_value()) << err;
  const Sgp4 sat(*tle);
  EXPECT_TRUE(sat.deep_space());

  const auto s0 = sat.propagate(0.0);
  ASSERT_TRUE(s0.has_value());
  EXPECT_NEAR(s0->r[0], 7473.37066650, kPosTolKm);
  EXPECT_NEAR(s0->r[1], 428.95261765, kPosTolKm);
  EXPECT_NEAR(s0->r[2], 5828.74786377, kPosTolKm);
  EXPECT_NEAR(s0->v[0], 5.10715413, kVelTolKmS);
  EXPECT_NEAR(s0->v[1], 6.44468284, kVelTolKmS);
  EXPECT_NEAR(s0->v[2], -0.18613096, kVelTolKmS);
}

TEST(Sgp4Test, DeepSpaceStaysOnOrbitOverADay) {
  // Structural bound for the SDP4 case away from epoch: the radius must
  // stay inside the osculating perigee/apogee band (with slack for the
  // lunar/solar + resonance perturbations the test is exercising).
  std::string err;
  const auto tle = Tle::parse(kStr3DeepL1, kStr3DeepL2, "", &err);
  ASSERT_TRUE(tle.has_value()) << err;
  const Sgp4 sat(*tle);
  const double a_km = sat.a() * Sgp4Constants::radiusearthkm;
  const double perigee = a_km * (1.0 - sat.ecco());
  const double apogee = a_km * (1.0 + sat.ecco());
  for (double t = 0.0; t <= 1440.0; t += 80.0) {
    const auto s = sat.propagate(t);
    ASSERT_TRUE(s.has_value()) << "t=" << t;
    const double r =
        std::sqrt(s->r[0] * s->r[0] + s->r[1] * s->r[1] + s->r[2] * s->r[2]);
    EXPECT_GT(r, perigee - 200.0) << "t=" << t;
    EXPECT_LT(r, apogee + 200.0) << "t=" << t;
  }
}

TEST(Sgp4Test, PropagationIsAPureFunctionOfTime) {
  // No mutable integrator state: evaluating out of order, or the same t
  // twice, must yield identical bits (the thread-safety contract).
  std::string err;
  const auto tle = Tle::parse(kStr3DeepL1, kStr3DeepL2, "", &err);
  ASSERT_TRUE(tle.has_value()) << err;
  const Sgp4 sat(*tle);
  const auto a = sat.propagate(1440.0);
  (void)sat.propagate(3.0);
  (void)sat.propagate(-60.0);
  const auto b = sat.propagate(1440.0);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(dbits(a->r[i]), dbits(b->r[i]));
    EXPECT_EQ(dbits(a->v[i]), dbits(b->v[i]));
  }
}

// ------------------------------------------------- batch bit-identity

TEST(BatchPropagatorTest, WalkerBatchMatchesScalarBitForBit) {
  const Constellation c(starlink_shells());
  BatchFrame frame;
  for (const double t : {0.0, 123.5, 5400.0, 86400.0}) {
    c.propagator().batch().advance(t, false, frame);
    ASSERT_EQ(frame.size(), c.total_sats());
    std::size_t f = 0;
    for (std::size_t s = 0; s < c.shells().size(); ++s) {
      const Shell& shell = c.shells()[s];
      for (std::size_t p = 0; p < shell.planes; ++p) {
        for (std::size_t i = 0; i < shell.sats_per_plane; ++i, ++f) {
          const geo::GeoPoint pos = c.position(SatId{s, p, i}, t);
          ASSERT_EQ(dbits(frame.lat_deg[f]), dbits(pos.lat_deg))
              << "t=" << t << " sat=" << f;
          ASSERT_EQ(dbits(frame.lon_deg[f]), dbits(pos.lon_deg))
              << "t=" << t << " sat=" << f;
          ASSERT_EQ(dbits(frame.alt_km[f]), dbits(pos.alt_km))
              << "t=" << t << " sat=" << f;
        }
      }
    }
  }
}

TEST(BatchPropagatorTest, Sgp4BatchMatchesScalarBitForBit) {
  const Constellation c({starlink_shell1()}, OrbitModel::sgp4);
  BatchFrame frame;
  c.propagator().batch().advance(900.0, true, frame);
  ASSERT_EQ(frame.size(), c.total_sats());
  for (std::size_t f = 0; f < frame.size(); ++f) {
    const geo::GeoPoint pos = c.propagator().position(f, 900.0);
    ASSERT_EQ(dbits(frame.lat_deg[f]), dbits(pos.lat_deg)) << "sat=" << f;
    ASSERT_EQ(dbits(frame.lon_deg[f]), dbits(pos.lon_deg)) << "sat=" << f;
    ASSERT_EQ(dbits(frame.alt_km[f]), dbits(pos.alt_km)) << "sat=" << f;
  }
}

TEST(PropagatorTest, WalkerPositionMatchesConstellationBitForBit) {
  const Constellation c(starlink_shells());
  for (const double t : {0.0, 777.0, 43210.5}) {
    const geo::GeoPoint a = c.position(SatId{1, 3, 7}, t);
    const geo::GeoPoint b = walker_position(c.shells()[1], 3, 7, t);
    EXPECT_EQ(dbits(a.lat_deg), dbits(b.lat_deg));
    EXPECT_EQ(dbits(a.lon_deg), dbits(b.lon_deg));
    EXPECT_EQ(dbits(a.alt_km), dbits(b.alt_km));
  }
}

// --------------------------------------------- sgp4-mode constellation

TEST(Sgp4ConstellationTest, SyntheticWalkerElementsStayNearShellGeometry) {
  const Constellation c({starlink_shell1()}, OrbitModel::sgp4);
  // Synthetic near-circular elements: altitude stays within the J2/drag
  // band around the shell altitude, latitude within the inclination.
  for (const double t : {0.0, 1800.0, 5400.0}) {
    const geo::GeoPoint pos = c.position(SatId{0, 10, 5}, t);
    EXPECT_NEAR(pos.alt_km, 550.0, 40.0) << "t=" << t;
    EXPECT_LE(std::fabs(pos.lat_deg), 53.0 + 0.5) << "t=" << t;
  }
}

TEST(Sgp4ConstellationTest, BestVisibleMatchesBruteForceArgmax) {
  const Constellation c({starlink_shell1()}, OrbitModel::sgp4);
  const geo::GeoPoint user{47.6, -122.3, 0.0};
  for (const double t : {0.0, 3600.0}) {
    std::optional<VisibleSat> naive;
    for (std::size_t p = 0; p < c.shells()[0].planes; ++p) {
      for (std::size_t i = 0; i < c.shells()[0].sats_per_plane; ++i) {
        const SatId id{0, p, i};
        const geo::GeoPoint pos = c.position(id, t);
        const double elev = geo::elevation_deg(user, pos);
        if (elev >= 25.0 && (!naive || elev > naive->elevation_deg)) {
          naive = VisibleSat{id, pos, elev, 0.0};
        }
      }
    }
    const auto fast = c.best_visible(user, t, 25.0);
    ASSERT_EQ(fast.has_value(), naive.has_value()) << "t=" << t;
    if (fast) {
      EXPECT_EQ(fast->id, naive->id) << "t=" << t;
      EXPECT_EQ(dbits(fast->elevation_deg), dbits(naive->elevation_deg));
    }
  }
}

TEST(Sgp4ConstellationTest, TleCatalogConstellationPropagates) {
  std::string err;
  auto cat = parse_tle_catalog(kStr3NearL1 + "\n" + kStr3NearL2 + "\n", &err);
  ASSERT_TRUE(cat.has_value()) << err;
  const Constellation c = Constellation::from_tles(std::move(*cat));
  EXPECT_EQ(c.total_sats(), 1u);
  EXPECT_EQ(c.model(), OrbitModel::sgp4);
  EXPECT_NE(c.ephemeris_hash(), 0u);
  const geo::GeoPoint pos = c.position(SatId{0, 0, 0}, 0.0);
  EXPECT_GE(pos.lat_deg, -90.0);
  EXPECT_LE(pos.lat_deg, 90.0);
  // STR#3 case: ~160-240 km perigee band at epoch.
  EXPECT_GT(pos.alt_km, 100.0);
  EXPECT_LT(pos.alt_km, 500.0);
}

TEST(Sgp4ConstellationTest, IdentityHashDistinguishesOrbitModels) {
  AccessConfig cfg;
  cfg.name = "hash-probe";
  cfg.orbit = OrbitClass::leo;
  const Constellation walker({starlink_shell1()});
  const Constellation sgp4({starlink_shell1()}, OrbitModel::sgp4);
  EXPECT_EQ(walker.ephemeris_hash(), 0u);
  EXPECT_NE(access_identity_hash(cfg, &walker), access_identity_hash(cfg, &sgp4));
}

// --------------------------------------------------- bugfix regressions

TEST(VisibleRegressionTest, ConePrefilterIsBitIdenticalToNaiveSweep) {
  // The historical visible() ran position() + elevation_deg for every
  // satellite. The cone-prefiltered version must reproduce that scan's
  // output exactly: same satellites, same order, same doubles.
  const Constellation c(starlink_shells());
  for (const double lat : {-55.0, 0.1, 47.6, 69.5}) {
    for (const double t : {0.0, 911.0, 5432.1}) {
      const geo::GeoPoint ground{lat, -122.3, 0.0};
      std::vector<VisibleSat> naive;
      for (std::size_t s = 0; s < c.shells().size(); ++s) {
        const Shell& shell = c.shells()[s];
        for (std::size_t p = 0; p < shell.planes; ++p) {
          for (std::size_t i = 0; i < shell.sats_per_plane; ++i) {
            const SatId id{s, p, i};
            const geo::GeoPoint pos = c.position(id, t);
            const double elev = geo::elevation_deg(ground, pos);
            if (elev >= 25.0) {
              naive.push_back({id, pos, elev,
                               geo::slant_range_km({ground.lat_deg, ground.lon_deg, 0.0},
                                                   pos)});
            }
          }
        }
      }
      const auto fast = c.visible(ground, t, 25.0);
      ASSERT_EQ(fast.size(), naive.size()) << "lat=" << lat << " t=" << t;
      for (std::size_t k = 0; k < fast.size(); ++k) {
        EXPECT_EQ(fast[k].id, naive[k].id) << "k=" << k;
        EXPECT_EQ(dbits(fast[k].elevation_deg), dbits(naive[k].elevation_deg));
        EXPECT_EQ(dbits(fast[k].slant_km), dbits(naive[k].slant_km));
        EXPECT_EQ(dbits(fast[k].position.lat_deg), dbits(naive[k].position.lat_deg));
        EXPECT_EQ(dbits(fast[k].position.lon_deg), dbits(naive[k].position.lon_deg));
      }
    }
  }
}

TEST(ShellValidationTest, ZeroPlanesThrowsDiagnostic) {
  Shell bad = starlink_shell1();
  bad.name = "degenerate";
  bad.planes = 0;
  try {
    const Constellation c({bad});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("degenerate"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("planes"), std::string::npos) << e.what();
  }
}

TEST(ShellValidationTest, ZeroSatsPerPlaneThrows) {
  Shell bad = oneweb_shell();
  bad.sats_per_plane = 0;
  EXPECT_THROW(Constellation({bad}), std::invalid_argument);
  EXPECT_THROW(Constellation({bad}, OrbitModel::sgp4), std::invalid_argument);
}

TEST(GeoSentinelTest, GeoIdsNeverCollideWithWalkerShellZero) {
  GeoFleet fleet;
  fleet.add_slot("GEO-1", -100.0);
  fleet.add_slot("GEO-2", -30.0);
  const auto best = fleet.best_visible({40.0, -95.0, 0.0}, 10.0);
  ASSERT_TRUE(best.has_value());
  EXPECT_TRUE(best->id.is_geo());
  EXPECT_EQ(best->id.shell, kGeoShellIndex);
  EXPECT_EQ(best->id.index, 0u);  // nearest slot
  EXPECT_FALSE((best->id == SatId{0, 0, 0}));
  EXPECT_FALSE(SatId{}.is_geo());
}

// -------------------------------------------------- model enum plumbing

TEST(OrbitModelTest, ToStringParseRoundTrip) {
  EXPECT_EQ(to_string(OrbitModel::walker), "walker");
  EXPECT_EQ(to_string(OrbitModel::sgp4), "sgp4");
  EXPECT_EQ(parse_orbit_model("walker"), OrbitModel::walker);
  EXPECT_EQ(parse_orbit_model("sgp4"), OrbitModel::sgp4);
  EXPECT_FALSE(parse_orbit_model("kepler").has_value());
}

}  // namespace
}  // namespace satnet::orbit
