// Fault-injection properties and the PR's acceptance scenario.
//
// The contract under test (DESIGN.md §10): a FaultPlan is a pure value —
// the same seed produces the same schedule no matter how many shards or
// threads consume it; windows for one target never overlap; plans
// round-trip through the text spec losslessly; and a campaign run under
// an active plan stays byte-identical across thread counts, with every
// quarantined shard accounted for explicitly.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/hook.hpp"
#include "fault/plan.hpp"
#include "mlab/campaign.hpp"
#include "runtime/sharded.hpp"
#include "synth/world.hpp"

namespace satnet {
namespace {

using fault::EventKind;
using fault::FaultEvent;
using fault::FaultPlan;
using fault::GenerateConfig;

GenerateConfig busy_config() {
  GenerateConfig cfg;
  cfg.horizon_sec = 86400.0 * 30;
  cfg.gateway_outages = 6;
  cfg.gateway_names = {"seattle", "anchorage", "frankfurt"};
  cfg.handoff_storms = 4;
  cfg.storm_network = "starlink";
  cfg.weather_escalations = 3;
  cfg.weather_centers = {{47.6, -122.3, 0}, {52.5, 13.4, 0}};
  cfg.loss_bursts = 5;
  cfg.loss_operator = "starlink";
  cfg.loss_fraction = 0.02;
  cfg.shard_failure_prob = 0.1;
  cfg.shard_phase = "mlab.campaign";
  return cfg;
}

TEST(FaultPlanTest, GenerateIsPureFunctionOfConfigAndSeed) {
  const auto cfg = busy_config();
  const FaultPlan a = FaultPlan::generate(cfg, 42);
  const FaultPlan b = FaultPlan::generate(cfg, 42);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 0u);
  const FaultPlan c = FaultPlan::generate(cfg, 43);
  EXPECT_FALSE(a == c) << "different seeds must not collide";
}

TEST(FaultPlanTest, GeneratedWindowsNeverOverlapPerTarget) {
  const FaultPlan plan = FaultPlan::generate(busy_config(), 7);
  EXPECT_NO_THROW(plan.validate());
  const auto& evs = plan.events();
  for (std::size_t i = 0; i < evs.size(); ++i) {
    for (std::size_t j = i + 1; j < evs.size(); ++j) {
      if (evs[i].kind != evs[j].kind || evs[i].target != evs[j].target) continue;
      const bool disjoint = evs[i].t_end_sec <= evs[j].t_start_sec ||
                            evs[j].t_end_sec <= evs[i].t_start_sec;
      EXPECT_TRUE(disjoint) << fault::to_string(evs[i].kind) << " on "
                            << evs[i].target << ": [" << evs[i].t_start_sec << ","
                            << evs[i].t_end_sec << ") overlaps ["
                            << evs[j].t_start_sec << "," << evs[j].t_end_sec << ")";
    }
  }
}

TEST(FaultPlanTest, GenerateRejectsNonPositiveHorizonWhenEventsRequested) {
  // Without a positive horizon every slot collapses to a zero-duration
  // window; generate() must refuse up front rather than let validate()
  // report a confusing "empty window" on event #0.
  GenerateConfig cfg;
  cfg.horizon_sec = 0;
  cfg.gateway_outages = 1;
  EXPECT_THROW(FaultPlan::generate(cfg, 1), std::invalid_argument);
  cfg.horizon_sec = -5;
  EXPECT_THROW(FaultPlan::generate(cfg, 1), std::invalid_argument);

  // shard_failure is whole-run, not windowed: it alone needs no horizon
  // (the window clamps to at least one second).
  GenerateConfig only_shard;
  only_shard.horizon_sec = 0;
  only_shard.shard_failure_prob = 0.2;
  const FaultPlan plan = FaultPlan::generate(only_shard, 1);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_NO_THROW(plan.validate());
  EXPECT_GT(plan.events()[0].t_end_sec, plan.events()[0].t_start_sec);
}

TEST(FaultPlanTest, GenerateTinyHorizonNeverProducesZeroDurationWindows) {
  // Slot lengths shrink with the horizon, but the in-slot window length
  // draw has a strictly positive floor — even a one-second horizon with
  // every kind requested yields only non-empty windows.
  GenerateConfig cfg;
  cfg.horizon_sec = 1.0;
  cfg.gateway_outages = 4;
  cfg.gateway_names = {"a", "b"};
  cfg.handoff_storms = 3;
  cfg.weather_escalations = 3;
  cfg.loss_bursts = 3;
  cfg.shard_failure_prob = 0.1;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultPlan plan = FaultPlan::generate(cfg, seed);
    EXPECT_NO_THROW(plan.validate()) << "seed " << seed;
    for (const FaultEvent& ev : plan.events()) {
      EXPECT_GT(ev.t_end_sec, ev.t_start_sec)
          << "seed " << seed << ": " << fault::to_string(ev.kind) << " on "
          << ev.target;
    }
  }
}

TEST(FaultPlanTest, GeneratedCrossTargetWindowsMayOverlapAndStillValidate) {
  // Slots are per (kind, target): windows on *different* gateways share
  // the horizon freely. With three gateways squeezed into a tight
  // horizon such cross-target overlap actually happens, and validate()
  // must accept it — only same-target overlap is illegal.
  GenerateConfig cfg;
  cfg.horizon_sec = 600;
  cfg.gateway_outages = 9;
  cfg.gateway_names = {"gw-a", "gw-b", "gw-c"};
  bool cross_target_overlap = false;
  for (std::uint64_t seed = 1; seed <= 10 && !cross_target_overlap; ++seed) {
    const FaultPlan plan = FaultPlan::generate(cfg, seed);
    EXPECT_NO_THROW(plan.validate()) << "seed " << seed;
    const auto& evs = plan.events();
    for (std::size_t i = 0; i < evs.size(); ++i) {
      for (std::size_t j = i + 1; j < evs.size(); ++j) {
        if (evs[i].target == evs[j].target) continue;
        if (evs[i].t_start_sec < evs[j].t_end_sec &&
            evs[j].t_start_sec < evs[i].t_end_sec) {
          cross_target_overlap = true;
        }
      }
    }
  }
  EXPECT_TRUE(cross_target_overlap)
      << "nine outages over three gateways in 600s should collide across targets";
}

TEST(FaultPlanTest, SpecRoundTripIsLossless) {
  const FaultPlan plan = FaultPlan::generate(busy_config(), 11);
  const FaultPlan reparsed = FaultPlan::parse_spec(plan.to_spec());
  EXPECT_EQ(plan, reparsed);
}

TEST(FaultPlanTest, ParseSkipsCommentsAndBlankLines) {
  const FaultPlan plan = FaultPlan::parse_spec(
      "# a comment\n"
      "\n"
      "gateway_outage,seattle,100,200,1\n"
      "  # indented comment\n"
      "weather_escalation,pnw,0,3600,3,47.6,-122.3,800\n");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, EventKind::gateway_outage);
  EXPECT_EQ(plan.events()[1].kind, EventKind::weather_escalation);
  EXPECT_DOUBLE_EQ(plan.events()[1].radius_km, 800.0);
}

TEST(FaultPlanTest, ParseErrorsNameTheLine) {
  try {
    FaultPlan::parse_spec("gateway_outage,seattle,100,200,1\nbogus_kind,x,0,1,1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(FaultPlanTest, ValidateRejectsOverlapAndBadMagnitude) {
  const FaultPlan overlap(std::vector<FaultEvent>{
      {EventKind::gateway_outage, "seattle", 0, 200, 1.0, {0, 0, 0}, 0},
      {EventKind::gateway_outage, "seattle", 100, 300, 1.0, {0, 0, 0}, 0}});
  EXPECT_THROW(overlap.validate(), std::invalid_argument);

  const FaultPlan bad_loss(std::vector<FaultEvent>{
      {EventKind::burst_loss, "*", 0, 100, 1.5, {0, 0, 0}, 0}});
  EXPECT_THROW(bad_loss.validate(), std::invalid_argument);

  const FaultPlan inverted(std::vector<FaultEvent>{
      {EventKind::gateway_outage, "seattle", 200, 100, 1.0, {0, 0, 0}, 0}});
  EXPECT_THROW(inverted.validate(), std::invalid_argument);
}

TEST(FaultHookTest, QueriesAnswerFromThePlan) {
  FaultPlan plan(std::vector<FaultEvent>{
      {EventKind::gateway_outage, "seattle", 100, 200, 1.0, {0, 0, 0}, 0},
      {EventKind::handoff_storm, "starlink", 50, 150, 4.0, {0, 0, 0}, 0},
      {EventKind::weather_escalation, "pnw", 0, 1000, 2.0, {47.6, -122.3, 0}, 500},
      {EventKind::weather_escalation, "pnw2", 0, 1000, 3.0, {47.6, -122.3, 0}, 200},
      {EventKind::burst_loss, "starlink", 0, 100, 0.6, {0, 0, 0}, 0},
      {EventKind::burst_loss, "*", 0, 100, 0.7, {0, 0, 0}, 0}});
  fault::ScopedHook scoped(std::move(plan));
  const fault::Hook* hook = fault::Hook::active();
  ASSERT_NE(hook, nullptr);

  EXPECT_TRUE(hook->gateway_down("seattle", 150));
  EXPECT_FALSE(hook->gateway_down("seattle", 250)) << "window is half-open";
  EXPECT_FALSE(hook->gateway_down("seattle", 200)) << "t_end is exclusive";
  EXPECT_FALSE(hook->gateway_down("anchorage", 150));

  EXPECT_DOUBLE_EQ(hook->reconfig_interval_scale("starlink", 100), 4.0);
  EXPECT_DOUBLE_EQ(hook->reconfig_interval_scale("starlink", 200), 1.0);
  EXPECT_DOUBLE_EQ(hook->reconfig_interval_scale("oneweb", 100), 1.0);

  // Both escalations cover the inner point; the stronger floor wins.
  EXPECT_EQ(hook->weather_severity_floor({47.6, -122.3, 0}, 10), 3);
  // ~400 km east: only the 500 km escalation still covers.
  EXPECT_EQ(hook->weather_severity_floor({47.6, -116.9, 0}, 10), 2);
  EXPECT_EQ(hook->weather_severity_floor({0, 0, 0}, 10), 0);

  // Active bursts sum (0.6 + 0.7) and cap at 1.0.
  EXPECT_DOUBLE_EQ(hook->extra_space_loss("starlink", 50), 1.0);
  EXPECT_DOUBLE_EQ(hook->extra_space_loss("viasat", 50), 0.7) << "wildcard only";
  EXPECT_DOUBLE_EQ(hook->extra_space_loss("starlink", 150), 0.0);
}

TEST(FaultHookTest, NoHookMeansNeutralAnswers) {
  fault::Hook::clear();
  EXPECT_EQ(fault::Hook::active(), nullptr);
}

TEST(FaultHookTest, ShardFailureScheduleIndependentOfShardCount) {
  FaultPlan plan(std::vector<FaultEvent>{
      {EventKind::shard_failure, "p", 0, 1e9, 0.5, {0, 0, 0}, 0}});
  fault::ScopedHook scoped(std::move(plan));
  const fault::Hook* hook = fault::Hook::active();
  ASSERT_NE(hook, nullptr);

  // The decision for shard i is a pure function of (phase, i, attempt):
  // querying it as part of a 10-shard campaign, a 100-shard campaign,
  // or in reverse order yields the same verdicts.
  std::vector<bool> ten, hundred, reversed(100);
  for (std::size_t i = 0; i < 10; ++i) ten.push_back(hook->fail_shard("p", i, 0));
  for (std::size_t i = 0; i < 100; ++i) hundred.push_back(hook->fail_shard("p", i, 0));
  for (std::size_t i = 100; i-- > 0;) reversed[i] = hook->fail_shard("p", i, 0);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(ten[i], hundred[i]);
  EXPECT_EQ(hundred, reversed);

  // Probability 0.5 must actually split the population.
  std::size_t fails = 0;
  for (const bool f : hundred) fails += f;
  EXPECT_GT(fails, 20u);
  EXPECT_LT(fails, 80u);

  // Distinct attempts re-roll; a different phase never matches.
  bool any_attempt_differs = false;
  for (std::size_t i = 0; i < 100; ++i) {
    if (hook->fail_shard("p", i, 0) != hook->fail_shard("p", i, 1)) {
      any_attempt_differs = true;
      break;
    }
  }
  EXPECT_TRUE(any_attempt_differs);
  EXPECT_FALSE(hook->fail_shard("other", 0, 0));
}

TEST(FaultRuntimeTest, InjectedFailuresRetryAndDegradeDeterministically) {
  FaultPlan plan(std::vector<FaultEvent>{
      {EventKind::shard_failure, "test.phase", 0, 1e9, 0.4, {0, 0, 0}, 0}});
  fault::ScopedHook scoped(std::move(plan));

  const runtime::ShardedCampaign<int> campaign(
      32, [](std::size_t i) { return static_cast<int>(i) + 1; }, "test.phase");
  runtime::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.degrade = true;

  runtime::CampaignReport r1, r2, r8;
  const auto one = campaign.run_with_report(1, policy, &r1);
  const auto two = campaign.run_with_report(2, policy, &r2);
  const auto eight = campaign.run_with_report(8, policy, &r8);

  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_EQ(r1.retries, r2.retries);
  EXPECT_EQ(r1.retries, r8.retries);
  EXPECT_EQ(r1.degraded_shards, r2.degraded_shards);
  EXPECT_EQ(r1.degraded_shards, r8.degraded_shards);
  EXPECT_GT(r1.retries, 0u) << "p=0.4 over 32 shards should trigger retries";

  // Degraded slots carry the default value; every other slot its result.
  for (std::size_t i = 0; i < one.size(); ++i) {
    const bool degraded = std::find(r1.degraded_shards.begin(),
                                    r1.degraded_shards.end(),
                                    i) != r1.degraded_shards.end();
    EXPECT_EQ(one[i], degraded ? 0 : static_cast<int>(i) + 1);
  }
  EXPECT_EQ(r1.degraded, r1.degraded_shards.size());
  EXPECT_EQ(r1.degraded_errors.size(), r1.degraded_shards.size());
}

// The PR's acceptance scenario: a campaign under a plan with at least one
// gateway outage and one handoff storm completes without abort, reports
// per-event degraded accounting, and is byte-identical across 1/2/8
// worker threads.
TEST(FaultAcceptanceTest, CampaignWithOutageAndStormIsThreadCountInvariant) {
  FaultPlan plan = FaultPlan::parse_spec(
      "gateway_outage,seattle,864000,3456000,1\n"
      "handoff_storm,starlink,432000,518400,4\n"
      "burst_loss,starlink,4320000,5184000,0.01\n"
      "shard_failure,mlab.campaign,0,63072000,0.15\n");
  plan.validate();
  fault::ScopedHook scoped(std::move(plan));

  const synth::World world;
  const auto run = [&](unsigned threads, runtime::CampaignReport* report) {
    mlab::CampaignConfig cfg;
    cfg.volume_scale = 0.0005;
    cfg.min_tests_per_sno = 25;
    cfg.threads = threads;
    cfg.retry.max_attempts = 2;
    cfg.retry.degrade = true;
    return mlab::run_campaign(world, cfg, report);
  };

  runtime::CampaignReport r1, r2, r8;
  const auto one = run(1, &r1);
  const auto two = run(2, &r2);
  const auto eight = run(8, &r8);

  ASSERT_GT(one.size(), 0u) << "degrade mode must not abort the campaign";
  EXPECT_EQ(one.hash(), two.hash());
  EXPECT_EQ(one.hash(), eight.hash());

  EXPECT_EQ(r1.phase, "mlab.campaign");
  EXPECT_EQ(r1.degraded_shards, r2.degraded_shards);
  EXPECT_EQ(r1.degraded_shards, r8.degraded_shards);
  EXPECT_EQ(r1.retries, r8.retries);
  EXPECT_EQ(r1.degraded, r1.degraded_shards.size());
  for (const auto& what : r1.degraded_errors) {
    EXPECT_NE(what.find("injected shard failure"), std::string::npos) << what;
  }

  // The plan must actually have bitten: with p=0.15 per attempt over the
  // campaign's shards, at least one retry or quarantine is expected (the
  // exact count is pinned by determinism above, not by chance).
  EXPECT_GT(r1.retries + r1.degraded, 0u);

  // And the faults must have changed the data: the same campaign with no
  // hook produces a different dataset (outage + storm + loss all bite).
  fault::Hook::clear();
  mlab::CampaignConfig clean_cfg;
  clean_cfg.volume_scale = 0.0005;
  clean_cfg.min_tests_per_sno = 25;
  const auto clean = mlab::run_campaign(world, clean_cfg);
  EXPECT_NE(clean.hash(), one.hash());
}

}  // namespace
}  // namespace satnet
