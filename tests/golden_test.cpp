// Golden-run regression suite: pins the deterministic report text of
// three representative binaries byte-for-byte against snapshots in
// tests/golden/. Any change to simulation behaviour — intended or not —
// shows up here as a readable diff.
//
// Regenerating snapshots after an intended behaviour change (never in CI):
//
//   ./build/tests/golden_test --update-golden
//
// then review the diff of tests/golden/ like any other code change.
// SATNET_UPDATE_GOLDEN=1 in the environment does the same.
//
// Ablation: --no-access-cache runs the whole suite with the
// access-interval index disabled (every orbital sample falls back to the
// full cone-prefilter sweep). The snapshots must still match byte-for-
// byte — that run is the equivalence oracle for the cache
// (scripts/verify.sh --golden exercises it).
//
// The epoch timeline gets the same treatment: --no-timeline disables
// replay entirely, --timeline-in FILE warm-starts the suite from a
// persisted snapshot, --timeline-out FILE saves the snapshots built by
// this run. All three must leave every snapshot byte-identical — the
// verify.sh golden gate runs cold, warm-from-file, and no-timeline
// rounds against the same tests/golden/ corpus.
//
// --recorder-out FILE runs the whole suite with the flight recorder
// enabled and drains the event stream to FILE afterwards; the snapshots
// must still match byte-for-byte (the recorder's observation-only
// oracle — scripts/verify.sh --golden exercises it).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "fault/hook.hpp"
#include "fault/plan.hpp"
#include "io/golden.hpp"
#include "io/timeline_io.hpp"
#include "obs/export.hpp"
#include "orbit/access_index.hpp"
#include "orbit/timeline.hpp"
#include "synth/world.hpp"

namespace {

using namespace satnet;

bool& update_mode() {
  static bool update = false;
  return update;
}

/// Extra thread count to assert (--threads N); 0 = none. The suite
/// always checks 1/2/8 — this lets the repeat gate sweep further counts
/// (e.g. scripts/verify.sh --golden) without recompiling.
unsigned& extra_threads() {
  static unsigned t = 0;
  return t;
}

std::string golden_path(const char* name) {
  return std::string(GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) ADD_FAILURE() << "cannot open snapshot " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write snapshot " << path;
  out << text;
}

/// Byte-compare `actual` against the named snapshot; in update mode,
/// rewrite the snapshot instead. On mismatch, report the first
/// differing line so the failure reads like a diff hunk.
void expect_golden(const char* name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (update_mode()) {
    write_file(path, actual);
    std::printf("  updated %s (%zu bytes)\n", path.c_str(), actual.size());
    return;
  }
  const std::string expected = read_file(path);
  if (actual == expected) return;
  std::istringstream got(actual), want(expected);
  std::string got_line, want_line;
  std::size_t lineno = 0;
  while (true) {
    ++lineno;
    const bool g = static_cast<bool>(std::getline(got, got_line));
    const bool w = static_cast<bool>(std::getline(want, want_line));
    if (!g && !w) break;
    if (!g || !w || got_line != want_line) {
      FAIL() << name << " diverges from " << path << " at line " << lineno
             << "\n  expected: " << (w ? want_line : "<end of file>")
             << "\n  actual:   " << (g ? got_line : "<end of file>")
             << "\nIf the change is intended, regenerate with "
                "./build/tests/golden_test --update-golden and review the diff.";
    }
  }
  FAIL() << name << ": byte difference not visible line-by-line (trailing "
            "whitespace or newline?) — expected "
         << expected.size() << " bytes, got " << actual.size();
}

TEST(Golden, IdentifySnosThreadInvariant) {
  const std::string t1 = io::identify_snos_report(1);
  const std::string t2 = io::identify_snos_report(2);
  const std::string t8 = io::identify_snos_report(8);
  EXPECT_EQ(t1, t2) << "identify_snos narration differs between 1 and 2 threads";
  EXPECT_EQ(t1, t8) << "identify_snos narration differs between 1 and 8 threads";
  if (extra_threads() != 0) {
    EXPECT_EQ(t1, io::identify_snos_report(extra_threads()))
        << "identify_snos narration differs at --threads " << extra_threads();
  }
  expect_golden("identify_snos.txt", t1);
}

TEST(Golden, Fig9Speedtest) {
  const synth::World world;  // the benches' shared default world
  expect_golden("bench_fig9_speedtest.txt", io::fig9_speedtest_report(world));
}

TEST(Golden, AblationWeather) {
  expect_golden("bench_ablation_weather.txt", io::ablation_weather_report());
}

// Same contract for the epoch timeline: snapshots built without a plan
// must never leak stale samples into a fault-plan run — the era keys
// travel with the snapshot, so affected lookups fall back per era while
// everything else keeps replaying. Compares the identify_snos
// walkthrough timeline-on vs timeline-off under the shipped example
// plan at every snapshot thread count.
TEST(Golden, TimelineAblationUnderFaultPlan) {
  const bool timeline_was_enabled = orbit::timeline_enabled();
  fault::ScopedHook scoped(fault::FaultPlan::load_file(FAULTPLAN_PATH));
  for (const unsigned threads : {1u, 2u, 8u}) {
    orbit::set_timeline_enabled(true);
    const std::string replayed = io::identify_snos_report(threads);
    orbit::set_timeline_enabled(false);
    const std::string on_demand = io::identify_snos_report(threads);
    EXPECT_EQ(replayed, on_demand)
        << "identify_snos diverges timeline-on vs timeline-off at " << threads
        << " threads under " << FAULTPLAN_PATH;
  }
  orbit::set_timeline_enabled(timeline_was_enabled);
}

// The access index must stay invisible in report text even while a
// fault plan rewrites gateway availability and reconfig cadence
// mid-campaign: outage/storm windows partition the memo key space into
// eras instead of corrupting (or flushing) cached samples. Compares the
// identify_snos walkthrough cache-on vs cache-off under the shipped
// example plan at every snapshot thread count.
TEST(Golden, AccessCacheAblationUnderFaultPlan) {
  const bool cache_was_enabled = orbit::access_cache_enabled();
  fault::ScopedHook scoped(fault::FaultPlan::load_file(FAULTPLAN_PATH));
  for (const unsigned threads : {1u, 2u, 8u}) {
    orbit::set_access_cache_enabled(true);
    const std::string cached = io::identify_snos_report(threads);
    orbit::set_access_cache_enabled(false);
    const std::string uncached = io::identify_snos_report(threads);
    EXPECT_EQ(cached, uncached)
        << "identify_snos diverges cache-on vs cache-off at " << threads
        << " threads under " << FAULTPLAN_PATH;
  }
  orbit::set_access_cache_enabled(cache_was_enabled);
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  std::string timeline_out;
  std::string recorder_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--update-golden") update_mode() = true;
    if (arg == "--recorder-out" && i + 1 < argc) {
      // The snapshot comparisons above run with the recorder live — the
      // golden gate doubles as the recorder's observation-only oracle.
      recorder_out = argv[i + 1];
      satnet::obs::FlightRecorder::global().set_enabled(true);
      if (recorder_out != "-") {
        satnet::obs::FlightRecorder::global().set_postmortem_path(
            recorder_out + ".postmortem");
      }
    }
    if (arg == "--no-access-cache") satnet::orbit::set_access_cache_enabled(false);
    if (arg == "--no-timeline") satnet::orbit::set_timeline_enabled(false);
    if (arg == "--timeline-in" && i + 1 < argc) {
      satnet::io::TimelineFileInfo info;
      const std::string diag = satnet::io::load_timelines(argv[i + 1], &info);
      if (diag.empty()) {
        std::printf("golden_test: timeline %s: %zu networks, %zu bytes\n",
                    argv[i + 1], info.networks, info.bytes);
      } else {
        // Non-fatal by design: the suite must produce identical snapshots
        // from an in-memory build, so a bad file only costs the warm start.
        std::fprintf(stderr, "golden_test: %s\n", diag.c_str());
      }
    }
    if (arg == "--timeline-out" && i + 1 < argc) timeline_out = argv[i + 1];
    if (arg == "--threads" && i + 1 < argc) {
      extra_threads() = static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  if (const char* env = std::getenv("SATNET_UPDATE_GOLDEN")) {
    if (env[0] != '\0' && env[0] != '0') update_mode() = true;
  }
  const int rc = RUN_ALL_TESTS();
  if (rc == 0 && !recorder_out.empty()) {
    const auto events = satnet::obs::FlightRecorder::global().drain();
    std::FILE* f = recorder_out == "-" ? stdout
                                       : std::fopen(recorder_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "golden_test: cannot open %s\n", recorder_out.c_str());
    } else {
      std::fputs(satnet::obs::events_jsonl(events).c_str(), f);
      if (f != stdout) std::fclose(f);
      std::printf("golden_test: drained %zu flight-recorder events to %s\n",
                  events.size(), recorder_out.c_str());
    }
  }
  if (rc == 0 && !timeline_out.empty()) {
    const std::string diag =
        satnet::io::save_timelines(timeline_out, "golden_test suite run");
    if (diag.empty()) {
      std::printf("golden_test: saved timeline to %s\n", timeline_out.c_str());
    } else {
      std::fprintf(stderr, "golden_test: %s\n", diag.c_str());
    }
  }
  return rc;
}
