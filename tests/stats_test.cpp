#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/cdf.hpp"
#include "stats/kde.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"

namespace satnet::stats {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ForkIsIndependentOfParentContinuation) {
  Rng parent(7);
  Rng child = parent.fork(1);
  const double child_first = child.uniform();
  // Re-derive: same parent state sequence gives the same child.
  Rng parent2(7);
  Rng child2 = parent2.fork(1);
  EXPECT_DOUBLE_EQ(child_first, child2.uniform());
}

TEST(RngTest, NamedForksAreStable) {
  Rng a(7), b(7);
  EXPECT_DOUBLE_EQ(a.fork("ndt").uniform(), b.fork("ndt").uniform());
}

TEST(RngTest, NamedForksDifferByName) {
  Rng a(7), b(7);
  EXPECT_NE(a.fork("ndt").uniform(), b.fork("dns").uniform());
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    saw_lo |= v == 1;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, LognormalMedianIsApproximatelyMedian) {
  Rng rng(9);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.lognormal_median(100.0, 0.5));
  EXPECT_NEAR(median(sample), 100.0, 5.0);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-0.5));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(RngTest, ParetoLowerBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(5.0, 2.0), 5.0);
}

TEST(RngTest, WeightedIndexZeroWeightNeverPicked) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    EXPECT_NE(rng.weighted_index({1.0, 0.0, 1.0}), 1u);
  }
}

TEST(RngTest, WeightedIndexRejectsNoPositiveMass) {
  // All-zero weights leave discrete_distribution with no valid mass;
  // must throw rather than return an arbitrary index.
  Rng rng(4);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_EQ(rng.weighted_index({0.0, 2.0, 0.0}), 1u);
}

TEST(RngTest, PickEmptyContainerThrows) {
  // Regression: pick on an empty container used to call
  // uniform_int(0, -1), which is undefined behaviour.
  Rng rng(5);
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::out_of_range);
  const std::vector<int> one{42};
  EXPECT_EQ(rng.pick(one), 42);
}

TEST(RngTest, PoissonMeanRoughlyCorrect) {
  Rng rng(8);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

// ------------------------------------------------------------- summary

TEST(SummaryTest, PercentileOfEmptyIsNaN) {
  EXPECT_TRUE(std::isnan(percentile({}, 50)));
}

TEST(SummaryTest, PercentileSingleElement) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 42.0);
}

TEST(SummaryTest, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
}

TEST(SummaryTest, PercentileUnsortedInput) {
  const std::vector<double> v{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
}

TEST(SummaryTest, PercentileClampedOutOfRange) {
  const std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, -10), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 200), 3.0);
}

TEST(SummaryTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 2, 3}), 2.5);
}

TEST(SummaryTest, SummarizeOrdering) {
  Rng rng(6);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.normal(100, 15));
  const Summary s = summarize(v);
  EXPECT_LE(s.min, s.p5);
  EXPECT_LE(s.p5, s.p25);
  EXPECT_LE(s.p25, s.p50);
  EXPECT_LE(s.p50, s.p75);
  EXPECT_LE(s.p75, s.p95);
  EXPECT_LE(s.p95, s.max);
  EXPECT_EQ(s.count, 500u);
}

TEST(SummaryTest, StddevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5, 5, 5, 5}), 0.0);
}

TEST(SummaryTest, BoxplotQuartiles) {
  std::vector<double> v(101);
  std::iota(v.begin(), v.end(), 0.0);  // 0..100
  const Boxplot b = boxplot(v);
  EXPECT_DOUBLE_EQ(b.median, 50.0);
  EXPECT_DOUBLE_EQ(b.q1, 25.0);
  EXPECT_DOUBLE_EQ(b.q3, 75.0);
  EXPECT_EQ(b.n_outliers, 0u);
}

TEST(SummaryTest, BoxplotDetectsOutliers) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 500.0};
  const Boxplot b = boxplot(v);
  EXPECT_EQ(b.n_outliers, 1u);
  EXPECT_LT(b.whisker_high, 500.0);
}

TEST(SummaryTest, BoxplotWhiskersClippedToData) {
  const std::vector<double> v{10, 11, 12, 13, 14};
  const Boxplot b = boxplot(v);
  EXPECT_DOUBLE_EQ(b.whisker_low, 10.0);
  EXPECT_DOUBLE_EQ(b.whisker_high, 14.0);
}

// ----------------------------------------------------------------- KDE

TEST(KdeTest, DensityIntegratesToOne) {
  Rng rng(11);
  std::vector<double> sample;
  for (int i = 0; i < 400; ++i) sample.push_back(rng.normal(50, 10));
  const Kde kde(sample);
  const auto curve = kde.curve(512);
  double mass = 0;
  for (std::size_t i = 1; i < curve.x.size(); ++i) {
    mass += curve.y[i] * (curve.x[i] - curve.x[i - 1]);
  }
  EXPECT_NEAR(mass, 1.0, 0.05);
}

TEST(KdeTest, UnimodalGaussianHasOneDominantPeak) {
  Rng rng(12);
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(rng.normal(600, 30));
  const auto peaks = Kde(sample).peaks();
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(peaks.front().location, 600.0, 15.0);
  EXPECT_GT(peaks.front().mass, 0.8);
}

TEST(KdeTest, BimodalMixtureHasTwoPeaks) {
  Rng rng(13);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.normal(50, 8));
  for (int i = 0; i < 500; ++i) sample.push_back(rng.normal(600, 40));
  const auto peaks = Kde(sample).peaks();
  std::size_t significant = 0;
  for (const auto& p : peaks) {
    if (p.mass > 0.2) ++significant;
  }
  EXPECT_EQ(significant, 2u);
}

TEST(KdeTest, PeakMassesSumToApproximatelyOne) {
  Rng rng(14);
  std::vector<double> sample;
  for (int i = 0; i < 300; ++i) sample.push_back(rng.normal(100, 5));
  for (int i = 0; i < 300; ++i) sample.push_back(rng.normal(700, 25));
  double total = 0;
  for (const auto& p : Kde(sample).peaks()) total += p.mass;
  EXPECT_NEAR(total, 1.0, 0.08);
}

TEST(KdeTest, ExplicitBandwidthRespected) {
  const std::vector<double> sample{1, 2, 3};
  EXPECT_DOUBLE_EQ(Kde(sample, 5.0).bandwidth(), 5.0);
}

TEST(KdeTest, IsMultimodalDetectsMixture) {
  Rng rng(15);
  std::vector<double> uni, bi;
  for (int i = 0; i < 400; ++i) uni.push_back(rng.normal(600, 30));
  for (int i = 0; i < 200; ++i) bi.push_back(rng.normal(40, 5));
  for (int i = 0; i < 200; ++i) bi.push_back(rng.normal(600, 30));
  EXPECT_FALSE(is_multimodal(uni));
  EXPECT_TRUE(is_multimodal(bi));
}

TEST(KdeTest, TinySampleNotMultimodal) {
  EXPECT_FALSE(is_multimodal(std::vector<double>{1, 2, 3}));
}

// ----------------------------------------------------------------- CDF

TEST(CdfTest, MonotoneNondecreasing) {
  Rng rng(16);
  std::vector<double> sample;
  for (int i = 0; i < 300; ++i) sample.push_back(rng.uniform(0, 100));
  const Cdf cdf(sample);
  double prev = 0;
  for (double x = -10; x <= 110; x += 1.0) {
    const double f = cdf.at(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(cdf.at(1000), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(-1000), 0.0);
}

TEST(CdfTest, QuantileInverseRoundTrip) {
  std::vector<double> sample;
  for (int i = 1; i <= 100; ++i) sample.push_back(i);
  const Cdf cdf(sample);
  // Linear interpolation over ranks 0..n-1: the 1..100 sample has
  // quantile(q) = 1 + 99q.
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 50.5);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.01), 1.99);
}

TEST(CdfTest, QuantileMatchesPercentileConvention) {
  // The whole stats layer shares one quantile rule: Cdf::quantile(q)
  // must equal percentile(sample, 100q) for any sample and any q. This
  // is the PR 5 convention bugfix — the old ceil-index rule disagreed
  // with percentile_sorted on every q off the 1/n grid.
  Rng rng(23);
  std::vector<double> sample;
  for (int i = 0; i < 137; ++i) sample.push_back(rng.normal(50, 12));
  const Cdf cdf(sample);
  for (const double q : {0.0, 0.05, 0.17, 0.25, 0.5, 0.75, 0.95, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(cdf.quantile(q), percentile(sample, q * 100.0)) << "q=" << q;
  }
}

TEST(CdfTest, QuantileAndPercentileEdgeCases) {
  // p = 0 / p = 100 pin the extremes exactly.
  const std::vector<double> v{3.0, 1.0, 7.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 7.0);
  const Cdf cdf(v);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 7.0);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(cdf.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.5), 7.0);

  // A single-element sample answers that element for every p.
  const std::vector<double> one{42.0};
  const Cdf cdf_one(one);
  for (const double q : {0.0, 0.3, 1.0}) {
    EXPECT_DOUBLE_EQ(percentile(one, q * 100.0), 42.0);
    EXPECT_DOUBLE_EQ(cdf_one.quantile(q), 42.0);
  }

  // Empty samples answer NaN from both entry points.
  const std::vector<double> empty;
  EXPECT_TRUE(std::isnan(percentile(empty, 50.0)));
  EXPECT_TRUE(std::isnan(percentile_sorted(empty, 50.0)));
  EXPECT_TRUE(std::isnan(Cdf(empty).quantile(0.5)));
}

TEST(CdfTest, GridIsSortedInBothAxes) {
  Rng rng(17);
  std::vector<double> sample;
  for (int i = 0; i < 200; ++i) sample.push_back(rng.normal(0, 1));
  const auto grid = Cdf(sample).grid(10);
  ASSERT_EQ(grid.size(), 10u);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_LE(grid[i - 1].x, grid[i].x);
    EXPECT_LT(grid[i - 1].f, grid[i].f);
  }
}

// ---------------------------------------------------------- timeseries

TEST(TimeseriesTest, BucketizeGroupsByDay) {
  std::vector<Observation> obs;
  for (int day = 0; day < 3; ++day) {
    for (int k = 0; k < 5; ++k) {
      obs.push_back({day * 86400.0 + k * 1000.0, 10.0 * (day + 1)});
    }
  }
  const auto buckets = bucketize(obs, 86400.0);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].median, 10.0);
  EXPECT_DOUBLE_EQ(buckets[1].median, 20.0);
  EXPECT_DOUBLE_EQ(buckets[2].median, 30.0);
  EXPECT_EQ(buckets[0].count, 5u);
}

TEST(TimeseriesTest, BucketizeSkipsEmptyBuckets) {
  const std::vector<Observation> obs{{0.0, 1.0}, {10 * 86400.0, 2.0}};
  const auto buckets = bucketize(obs, 86400.0);
  EXPECT_EQ(buckets.size(), 2u);
}

TEST(TimeseriesTest, DailyVariationZeroForFlatSeries) {
  std::vector<Observation> obs;
  for (int day = 0; day < 10; ++day) obs.push_back({day * 86400.0, 50.0});
  const auto buckets = bucketize(obs, 86400.0);
  EXPECT_DOUBLE_EQ(daily_variation_p95(buckets), 0.0);
}

TEST(TimeseriesTest, DailyVariationCapturesStep) {
  std::vector<Observation> obs;
  for (int day = 0; day < 10; ++day) {
    obs.push_back({day * 86400.0, day < 5 ? 100.0 : 150.0});
  }
  const auto buckets = bucketize(obs, 86400.0);
  EXPECT_NEAR(daily_variation_p95(buckets), 0.5, 0.3);
}

TEST(TimeseriesTest, MeanShiftDetectedAtStep) {
  std::vector<Observation> obs;
  Rng rng(18);
  for (int i = 0; i < 200; ++i) {
    obs.push_back({i * 3600.0, (i < 100 ? 55.0 : 35.0) + rng.normal(0, 1.5)});
  }
  const auto shifts = detect_mean_shifts(obs, 24, 0.25, 5.0);
  ASSERT_EQ(shifts.size(), 1u);
  EXPECT_NEAR(shifts[0].t_sec, 100 * 3600.0, 24 * 3600.0);
  EXPECT_GT(shifts[0].before_mean, shifts[0].after_mean);
}

TEST(TimeseriesTest, NoShiftInStationarySeries) {
  std::vector<Observation> obs;
  Rng rng(19);
  for (int i = 0; i < 300; ++i) obs.push_back({i * 3600.0, 45.0 + rng.normal(0, 2.0)});
  EXPECT_TRUE(detect_mean_shifts(obs).empty());
}

TEST(TimeseriesTest, ShiftBelowAbsoluteFloorIgnored) {
  std::vector<Observation> obs;
  for (int i = 0; i < 100; ++i) obs.push_back({i * 60.0, i < 50 ? 10.0 : 13.0});
  // 30% relative but only 3 ms absolute: below the 5 ms floor.
  EXPECT_TRUE(detect_mean_shifts(obs, 10, 0.25, 5.0).empty());
}

// ------------------------------------------- property-style parameterized

class PercentileProperty : public ::testing::TestWithParam<int> {};

TEST_P(PercentileProperty, WithinMinMaxAndMonotoneInP) {
  Rng rng(100 + GetParam());
  std::vector<double> v;
  const int n = 1 + GetParam() * 7 % 97;
  for (int i = 0; i < n; ++i) v.push_back(rng.uniform(-50, 50));
  const double lo = *std::min_element(v.begin(), v.end());
  const double hi = *std::max_element(v.begin(), v.end());
  double prev = lo;
  for (double p = 0; p <= 100; p += 10) {
    const double q = percentile(v, p);
    EXPECT_GE(q, lo);
    EXPECT_LE(q, hi);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PercentileProperty, ::testing::Range(0, 20));

class KdePeakProperty : public ::testing::TestWithParam<int> {};

TEST_P(KdePeakProperty, MainPeakNearTrueMode) {
  const double mode = 50.0 + GetParam() * 70.0;
  Rng rng(GetParam());
  std::vector<double> sample;
  for (int i = 0; i < 600; ++i) sample.push_back(rng.normal(mode, mode * 0.05));
  const auto peaks = Kde(sample).peaks();
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(peaks.front().location, mode, mode * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Modes, KdePeakProperty, ::testing::Range(1, 11));

}  // namespace
}  // namespace satnet::stats
