// Edge cases of the transport models: option plumbing, the spurious-RTO
// machinery, go-back-N accounting, degenerate paths, and the weather /
// fault impairment plumbing.
#include <gtest/gtest.h>

#include "fault/hook.hpp"
#include "transport/linkmodel.hpp"
#include "transport/quic.hpp"
#include "transport/tcp.hpp"

namespace satnet::transport {
namespace {

PathProfile base_path() {
  PathProfile p;
  p.base_rtt_ms = 100;
  p.jitter_ms = 1;
  p.bottleneck_mbps = 50;
  return p;
}

// Regression: an outage (or zero capacity factor) must zero the
// bottleneck *exactly* — the 0.1 Mbps build-time floor is a sampling
// guard, not a promise that dead links trickle.
TEST(TransportEdgeTest, ImpairmentOutageZeroesBottleneckExactly) {
  weather::LinkImpact outage;
  outage.outage = true;
  outage.capacity_factor = 0.3;  // inconsistent pair: outage must win
  PathProfile p = base_path();
  apply_impairment(p, outage);
  EXPECT_DOUBLE_EQ(p.bottleneck_mbps, 0.0);

  weather::LinkImpact dead;
  dead.capacity_factor = 0.0;
  p = base_path();
  apply_impairment(p, dead);
  EXPECT_DOUBLE_EQ(p.bottleneck_mbps, 0.0);

  weather::LinkImpact halved;
  halved.capacity_factor = 0.5;
  halved.extra_sat_loss = 0.01;
  halved.extra_jitter_ms = 2.0;
  p = base_path();
  apply_impairment(p, halved);
  EXPECT_DOUBLE_EQ(p.bottleneck_mbps, 25.0);
  EXPECT_DOUBLE_EQ(p.sat_loss, 0.01);
  EXPECT_DOUBLE_EQ(p.jitter_ms, 3.0);
}

TEST(TransportEdgeTest, LinkFaultsAddBurstLossThroughHook) {
  fault::FaultPlan plan(std::vector<fault::FaultEvent>{
      {fault::EventKind::burst_loss, "starlink", 0, 100, 0.6, {0, 0, 0}, 0}});
  fault::ScopedHook scoped(std::move(plan));

  PathProfile p = base_path();
  p.sat_loss = 0.7;
  apply_link_faults(p, "starlink", 50.0);
  EXPECT_DOUBLE_EQ(p.sat_loss, 1.0) << "loss clamps at 1.0";

  p = base_path();
  p.sat_loss = 0.001;
  apply_link_faults(p, "starlink", 50.0);
  EXPECT_DOUBLE_EQ(p.sat_loss, 0.601);

  p = base_path();
  p.sat_loss = 0.001;
  apply_link_faults(p, "viasat", 50.0);
  EXPECT_DOUBLE_EQ(p.sat_loss, 0.001) << "other operators untouched";
  apply_link_faults(p, "starlink", 150.0);
  EXPECT_DOUBLE_EQ(p.sat_loss, 0.001) << "outside the window";
}

TEST(TransportEdgeTest, SnapshotCadenceConfigurable) {
  TcpOptions fast, slow;
  fast.snapshot_interval_ms = 50;
  slow.snapshot_interval_ms = 500;
  TcpFlow a(base_path(), fast, stats::Rng(1));
  TcpFlow b(base_path(), slow, stats::Rng(1));
  const auto ra = a.run_for(5000);
  const auto rb = b.run_for(5000);
  EXPECT_GT(ra.snapshots.size(), 5 * rb.snapshots.size());
}

TEST(TransportEdgeTest, SpuriousRtoAlwaysFires) {
  PathProfile p = base_path();
  p.spurious_rto_prob = 1.0;  // every round times out
  TcpFlow flow(p, TcpOptions{}, stats::Rng(2));
  const auto r = flow.run_for(8000);
  EXPECT_GT(r.n_rtos, 3u);
  EXPECT_GT(r.retrans_fraction, 0.2);  // go-back-N duplicates dominate
  EXPECT_EQ(r.bytes_sent, r.bytes_acked + r.bytes_retrans);
  // RTO idles dominate the timeline: few productive rounds.
  EXPECT_LT(r.goodput_mbps, 5.0);
}

TEST(TransportEdgeTest, GoBackNFractionScalesDuplicates) {
  PathProfile lo = base_path();
  lo.spurious_rto_prob = 0.3;
  lo.go_back_n_frac = 0.1;
  PathProfile hi = lo;
  hi.go_back_n_frac = 0.9;
  double lo_retrans = 0, hi_retrans = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    TcpFlow a(lo, TcpOptions{}, stats::Rng(s));
    TcpFlow b(hi, TcpOptions{}, stats::Rng(s));
    lo_retrans += a.run_for(8000).retrans_fraction;
    hi_retrans += b.run_for(8000).retrans_fraction;
  }
  EXPECT_GT(hi_retrans, 2 * lo_retrans);
}

TEST(TransportEdgeTest, MinRtoRespected) {
  PathProfile p = base_path();
  p.spurious_rto_prob = 1.0;
  TcpOptions opt;
  opt.min_rto_ms = 3000;
  TcpFlow flow(p, opt, stats::Rng(3));
  const auto r = flow.run_for(10000);
  // With a 3 s RTO per round, only ~3 rounds fit in 10 s.
  EXPECT_LE(r.n_rtos, 5u);
  EXPECT_GE(r.duration_ms, 10000.0);
}

TEST(TransportEdgeTest, TinyCapacityStillProgresses) {
  PathProfile p = base_path();
  p.bottleneck_mbps = 0.05;  // 50 kbps
  TcpFlow flow(p, TcpOptions{}, stats::Rng(4));
  const auto r = flow.run_for(10000);
  EXPECT_GT(r.bytes_acked, 0u);
  EXPECT_LT(r.goodput_mbps, 0.3);
}

TEST(TransportEdgeTest, ZeroJitterGivesFlatRtt) {
  PathProfile p = base_path();
  p.jitter_ms = 0;
  p.bottleneck_mbps = 10000;  // no queueing below max window
  TcpFlow flow(p, TcpOptions{}, stats::Rng(5));
  const auto r = flow.run_for(3000);
  EXPECT_NEAR(r.rtt_p5_ms, 100.0, 0.5);
  EXPECT_NEAR(r.rtt_median_ms, 100.0, 0.5);
  EXPECT_LT(r.jitter_p95_ms, 0.5);
}

TEST(TransportEdgeTest, BufferbloatRaisesMedianRtt) {
  PathProfile thin = base_path();
  thin.buffer_bdp = 0.2;
  PathProfile bloated = base_path();
  bloated.buffer_bdp = 4.0;
  TcpFlow a(thin, TcpOptions{}, stats::Rng(6));
  TcpFlow b(bloated, TcpOptions{}, stats::Rng(6));
  const auto ra = a.run_for(10000);
  const auto rb = b.run_for(10000);
  EXPECT_GT(rb.rtt_median_ms, ra.rtt_median_ms);
}

TEST(TransportEdgeTest, RenoGrowsLinearlyCubicFaster) {
  // After leaving slow start, CUBIC should regain a large window sooner
  // than Reno on a long-RTT path.
  PathProfile p;
  p.base_rtt_ms = 200;
  p.jitter_ms = 0.5;
  p.bottleneck_mbps = 400;
  p.sat_loss = 0.0003;
  TcpOptions reno, cubic;
  reno.cc = CongestionControl::reno;
  cubic.cc = CongestionControl::cubic;
  double reno_total = 0, cubic_total = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    TcpFlow a(p, reno, stats::Rng(s));
    TcpFlow b(p, cubic, stats::Rng(s));
    reno_total += a.run_for(20000).goodput_mbps;
    cubic_total += b.run_for(20000).goodput_mbps;
  }
  EXPECT_GT(cubic_total, reno_total);
}

TEST(TransportEdgeTest, QuicSpuriousPtoCheaperThanTcpRto) {
  PathProfile p = base_path();
  p.spurious_rto_prob = 0.5;
  double tcp_retrans = 0, quic_retrans = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    TcpFlow a(p, TcpOptions{}, stats::Rng(s));
    QuicFlow b(p, QuicOptions{}, stats::Rng(s));
    tcp_retrans += a.run_for(8000).retrans_fraction;
    quic_retrans += b.run_for(8000).retrans_fraction;
  }
  EXPECT_LT(quic_retrans, tcp_retrans * 0.25);
}

TEST(TransportEdgeTest, FetchZeroBytesCostsOnlyHandshake) {
  PathProfile p = base_path();
  p.jitter_ms = 0;
  stats::Rng rng(7);
  const double t = fetch_time_ms(p, 0, 2.0, rng);
  EXPECT_NEAR(t, 200.0, 120.0);  // 2 handshake RTTs + at most one round
}

}  // namespace
}  // namespace satnet::transport
