#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>

#include "runtime/sharded.hpp"
#include "runtime/thread_pool.hpp"
#include "stats/rng.hpp"

namespace satnet::runtime {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 50; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 50 * 51 / 2);
  // Idle pool: wait_idle returns immediately.
  pool.wait_idle();
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.shutdown();
  EXPECT_EQ(count.load(), 1);  // shutdown drains pending work first
  // A post-shutdown submit would never run (workers are gone); it must
  // fail loudly instead of deadlocking or dropping the task silently.
  EXPECT_THROW(pool.submit([&count] { count.fetch_add(1); }),
               std::logic_error);
  EXPECT_EQ(count.load(), 1);
  pool.shutdown();  // idempotent
}

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_GE(resolve_threads(0), 1u);
}

TEST(ShardRangesTest, CoversAllItemsWithoutOverlap) {
  const auto ranges = shard_ranges(10, 3);
  ASSERT_EQ(ranges.size(), 4u);
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);
    EXPECT_LE(end - begin, 3u);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 10u);
}

TEST(ShardRangesTest, EdgeCases) {
  EXPECT_TRUE(shard_ranges(0, 8).empty());
  EXPECT_EQ(shard_ranges(5, 100).size(), 1u);
  EXPECT_EQ(shard_ranges(5, 0).size(), 5u);  // clamped to chunks of 1
}

TEST(ShardedCampaignTest, ResultsInShardOrderForAnyThreadCount) {
  ShardedCampaign<std::size_t> campaign(64, [](std::size_t i) { return i * i; });
  for (const unsigned threads : {1u, 2u, 8u}) {
    const auto out = campaign.run(threads);
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ShardedCampaignTest, ShardExceptionPropagates) {
  ShardedCampaign<int> campaign(8, [](std::size_t i) -> int {
    if (i == 5) throw std::runtime_error("shard 5 failed");
    return static_cast<int>(i);
  });
  EXPECT_THROW(campaign.run(1), std::runtime_error);
  EXPECT_THROW(campaign.run(4), std::runtime_error);
}

TEST(ShardedCampaignTest, LowestIndexExceptionWins) {
  // Two failing shards: the rethrown exception is shard 2's regardless
  // of which worker hit its failure first.
  ShardedCampaign<int> campaign(8, [](std::size_t i) -> int {
    if (i == 2) throw std::runtime_error("two");
    if (i == 6) throw std::runtime_error("six");
    return 0;
  });
  for (const unsigned threads : {1u, 4u}) {
    try {
      campaign.run(threads);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "two");
    }
  }
}

TEST(ShardedCampaignTest, ZeroShards) {
  ShardedCampaign<int> campaign(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(campaign.run(4).empty());
}

// Regression: a worker exception must not discard the other shards'
// completed work. In degrade mode the failing (last) shard is
// quarantined and every earlier result survives.
TEST(ShardedCampaignTest, LastShardFailureKeepsEarlierResults) {
  constexpr std::size_t kShards = 8;
  ShardedCampaign<int> campaign(kShards, [](std::size_t i) -> int {
    if (i == kShards - 1) throw std::runtime_error("last shard down");
    return static_cast<int>(i) + 1;
  });
  RetryPolicy policy;
  policy.degrade = true;
  for (const unsigned threads : {1u, 4u}) {
    CampaignReport report;
    const auto out = campaign.run_with_report(threads, policy, &report);
    ASSERT_EQ(out.size(), kShards);
    for (std::size_t i = 0; i + 1 < kShards; ++i) EXPECT_EQ(out[i], static_cast<int>(i) + 1);
    EXPECT_EQ(out.back(), 0) << "quarantined slot carries the default value";
    EXPECT_EQ(report.degraded, 1u);
    ASSERT_EQ(report.degraded_shards, std::vector<std::size_t>{kShards - 1});
    ASSERT_EQ(report.degraded_errors.size(), 1u);
    EXPECT_EQ(report.degraded_errors.front(), "last shard down");
  }
}

// Regression: abort mode rethrows only after every shard has run, so no
// shard's execution is skipped by an early unwind.
TEST(ShardedCampaignTest, AbortRunsEveryShardBeforeRethrow) {
  constexpr std::size_t kShards = 8;
  std::atomic<std::size_t> executed{0};
  ShardedCampaign<int> campaign(kShards, [&executed](std::size_t i) -> int {
    executed.fetch_add(1);
    if (i == 0) throw std::runtime_error("zero");
    return 0;
  });
  for (const unsigned threads : {1u, 4u}) {
    executed.store(0);
    EXPECT_THROW(campaign.run(threads), std::runtime_error);
    EXPECT_EQ(executed.load(), kShards);
  }
}

TEST(ShardedCampaignTest, RetryRecoversTransientFailures) {
  constexpr std::size_t kShards = 6;
  std::array<std::atomic<int>, kShards> attempts{};
  ShardedCampaign<int> campaign(kShards, [&attempts](std::size_t i) -> int {
    if (attempts[i].fetch_add(1) == 0 && i % 2 == 0) {
      throw std::runtime_error("transient");
    }
    return static_cast<int>(i) * 10;
  });
  RetryPolicy policy;
  policy.max_attempts = 2;
  CampaignReport report;
  const auto out = campaign.run_with_report(4, policy, &report);
  ASSERT_EQ(out.size(), kShards);
  for (std::size_t i = 0; i < kShards; ++i) EXPECT_EQ(out[i], static_cast<int>(i) * 10);
  EXPECT_EQ(report.retries, 3u) << "shards 0, 2, 4 each retried once";
  EXPECT_EQ(report.degraded, 0u);
}

// The RNG forking discipline the runtime depends on: fork_stable is a
// pure function of (parent state, salt).
TEST(ForkStableTest, OrderIndependent) {
  const stats::Rng parent(123);
  stats::Rng a_first = parent.fork_stable(7);
  stats::Rng b_then = parent.fork_stable(9);
  stats::Rng b_first = parent.fork_stable(9);
  stats::Rng a_then = parent.fork_stable(7);
  EXPECT_DOUBLE_EQ(a_first.uniform(), a_then.uniform());
  EXPECT_DOUBLE_EQ(b_first.uniform(), b_then.uniform());
}

TEST(ForkStableTest, DoesNotAdvanceParent) {
  stats::Rng a(42);
  stats::Rng b(42);
  (void)a.fork_stable(1);
  (void)a.fork_stable(2);
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(ForkStableTest, DistinctSaltsDecorrelate) {
  const stats::Rng parent(5);
  std::set<std::int64_t> firsts;
  for (std::uint64_t salt = 0; salt < 32; ++salt) {
    stats::Rng child = parent.fork_stable(salt);
    firsts.insert(child.uniform_int(0, 1'000'000'000));
  }
  EXPECT_GE(firsts.size(), 31u);  // collisions astronomically unlikely
}

TEST(ForkStableTest, NameKeyMatchesHash) {
  const stats::Rng parent(77);
  stats::Rng by_name = parent.fork_stable("starlink");
  stats::Rng by_salt = parent.fork_stable(stats::Rng::hash_name("starlink"));
  EXPECT_DOUBLE_EQ(by_name.uniform(), by_salt.uniform());
}

}  // namespace
}  // namespace satnet::runtime
