file(REMOVE_RECURSE
  "CMakeFiles/satnet_orbit.dir/access.cpp.o"
  "CMakeFiles/satnet_orbit.dir/access.cpp.o.d"
  "CMakeFiles/satnet_orbit.dir/constellation.cpp.o"
  "CMakeFiles/satnet_orbit.dir/constellation.cpp.o.d"
  "CMakeFiles/satnet_orbit.dir/shell.cpp.o"
  "CMakeFiles/satnet_orbit.dir/shell.cpp.o.d"
  "libsatnet_orbit.a"
  "libsatnet_orbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
