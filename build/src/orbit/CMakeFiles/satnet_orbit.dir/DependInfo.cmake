
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orbit/access.cpp" "src/orbit/CMakeFiles/satnet_orbit.dir/access.cpp.o" "gcc" "src/orbit/CMakeFiles/satnet_orbit.dir/access.cpp.o.d"
  "/root/repo/src/orbit/constellation.cpp" "src/orbit/CMakeFiles/satnet_orbit.dir/constellation.cpp.o" "gcc" "src/orbit/CMakeFiles/satnet_orbit.dir/constellation.cpp.o.d"
  "/root/repo/src/orbit/shell.cpp" "src/orbit/CMakeFiles/satnet_orbit.dir/shell.cpp.o" "gcc" "src/orbit/CMakeFiles/satnet_orbit.dir/shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/satnet_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
