file(REMOVE_RECURSE
  "libsatnet_orbit.a"
)
