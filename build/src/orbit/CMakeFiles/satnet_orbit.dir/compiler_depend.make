# Empty compiler generated dependencies file for satnet_orbit.
# This may be replaced when dependencies are built.
