# Empty compiler generated dependencies file for satnet_stats.
# This may be replaced when dependencies are built.
