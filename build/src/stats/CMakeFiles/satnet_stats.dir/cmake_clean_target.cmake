file(REMOVE_RECURSE
  "libsatnet_stats.a"
)
