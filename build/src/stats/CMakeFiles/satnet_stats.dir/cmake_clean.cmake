file(REMOVE_RECURSE
  "CMakeFiles/satnet_stats.dir/cdf.cpp.o"
  "CMakeFiles/satnet_stats.dir/cdf.cpp.o.d"
  "CMakeFiles/satnet_stats.dir/kde.cpp.o"
  "CMakeFiles/satnet_stats.dir/kde.cpp.o.d"
  "CMakeFiles/satnet_stats.dir/rng.cpp.o"
  "CMakeFiles/satnet_stats.dir/rng.cpp.o.d"
  "CMakeFiles/satnet_stats.dir/summary.cpp.o"
  "CMakeFiles/satnet_stats.dir/summary.cpp.o.d"
  "CMakeFiles/satnet_stats.dir/timeseries.cpp.o"
  "CMakeFiles/satnet_stats.dir/timeseries.cpp.o.d"
  "libsatnet_stats.a"
  "libsatnet_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
