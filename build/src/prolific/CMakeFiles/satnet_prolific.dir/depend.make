# Empty dependencies file for satnet_prolific.
# This may be replaced when dependencies are built.
