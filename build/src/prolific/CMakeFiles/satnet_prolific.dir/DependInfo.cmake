
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prolific/addon.cpp" "src/prolific/CMakeFiles/satnet_prolific.dir/addon.cpp.o" "gcc" "src/prolific/CMakeFiles/satnet_prolific.dir/addon.cpp.o.d"
  "/root/repo/src/prolific/census.cpp" "src/prolific/CMakeFiles/satnet_prolific.dir/census.cpp.o" "gcc" "src/prolific/CMakeFiles/satnet_prolific.dir/census.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/satnet_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/satnet_http.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/satnet_video.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/satnet_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/satnet_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/satnet_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/satnet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/satnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/satnet_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/satnet_weather.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/satnet_orbit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
