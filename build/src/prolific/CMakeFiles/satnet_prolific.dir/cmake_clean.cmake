file(REMOVE_RECURSE
  "CMakeFiles/satnet_prolific.dir/addon.cpp.o"
  "CMakeFiles/satnet_prolific.dir/addon.cpp.o.d"
  "CMakeFiles/satnet_prolific.dir/census.cpp.o"
  "CMakeFiles/satnet_prolific.dir/census.cpp.o.d"
  "libsatnet_prolific.a"
  "libsatnet_prolific.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_prolific.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
