file(REMOVE_RECURSE
  "libsatnet_prolific.a"
)
