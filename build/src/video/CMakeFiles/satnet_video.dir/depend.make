# Empty dependencies file for satnet_video.
# This may be replaced when dependencies are built.
