file(REMOVE_RECURSE
  "libsatnet_video.a"
)
