file(REMOVE_RECURSE
  "CMakeFiles/satnet_video.dir/abr_player.cpp.o"
  "CMakeFiles/satnet_video.dir/abr_player.cpp.o.d"
  "libsatnet_video.a"
  "libsatnet_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
