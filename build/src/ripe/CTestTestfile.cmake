# CMake generated Testfile for 
# Source directory: /root/repo/src/ripe
# Build directory: /root/repo/build/src/ripe
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
