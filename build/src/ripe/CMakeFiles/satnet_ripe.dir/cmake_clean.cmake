file(REMOVE_RECURSE
  "CMakeFiles/satnet_ripe.dir/atlas.cpp.o"
  "CMakeFiles/satnet_ripe.dir/atlas.cpp.o.d"
  "CMakeFiles/satnet_ripe.dir/probes.cpp.o"
  "CMakeFiles/satnet_ripe.dir/probes.cpp.o.d"
  "libsatnet_ripe.a"
  "libsatnet_ripe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_ripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
