file(REMOVE_RECURSE
  "libsatnet_ripe.a"
)
