# Empty dependencies file for satnet_ripe.
# This may be replaced when dependencies are built.
