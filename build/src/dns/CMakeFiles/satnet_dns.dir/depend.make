# Empty dependencies file for satnet_dns.
# This may be replaced when dependencies are built.
