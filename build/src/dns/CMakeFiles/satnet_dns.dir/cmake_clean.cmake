file(REMOVE_RECURSE
  "CMakeFiles/satnet_dns.dir/resolver.cpp.o"
  "CMakeFiles/satnet_dns.dir/resolver.cpp.o.d"
  "CMakeFiles/satnet_dns.dir/roots.cpp.o"
  "CMakeFiles/satnet_dns.dir/roots.cpp.o.d"
  "libsatnet_dns.a"
  "libsatnet_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
