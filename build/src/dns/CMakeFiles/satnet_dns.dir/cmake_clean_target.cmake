file(REMOVE_RECURSE
  "libsatnet_dns.a"
)
