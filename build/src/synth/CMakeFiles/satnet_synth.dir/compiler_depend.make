# Empty compiler generated dependencies file for satnet_synth.
# This may be replaced when dependencies are built.
