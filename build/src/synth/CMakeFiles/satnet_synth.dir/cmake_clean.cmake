file(REMOVE_RECURSE
  "CMakeFiles/satnet_synth.dir/asdb.cpp.o"
  "CMakeFiles/satnet_synth.dir/asdb.cpp.o.d"
  "CMakeFiles/satnet_synth.dir/catalog.cpp.o"
  "CMakeFiles/satnet_synth.dir/catalog.cpp.o.d"
  "CMakeFiles/satnet_synth.dir/world.cpp.o"
  "CMakeFiles/satnet_synth.dir/world.cpp.o.d"
  "libsatnet_synth.a"
  "libsatnet_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
