file(REMOVE_RECURSE
  "libsatnet_synth.a"
)
