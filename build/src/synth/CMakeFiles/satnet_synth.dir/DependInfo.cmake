
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/asdb.cpp" "src/synth/CMakeFiles/satnet_synth.dir/asdb.cpp.o" "gcc" "src/synth/CMakeFiles/satnet_synth.dir/asdb.cpp.o.d"
  "/root/repo/src/synth/catalog.cpp" "src/synth/CMakeFiles/satnet_synth.dir/catalog.cpp.o" "gcc" "src/synth/CMakeFiles/satnet_synth.dir/catalog.cpp.o.d"
  "/root/repo/src/synth/world.cpp" "src/synth/CMakeFiles/satnet_synth.dir/world.cpp.o" "gcc" "src/synth/CMakeFiles/satnet_synth.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/satnet_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/satnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/satnet_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/satnet_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/satnet_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/satnet_weather.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/satnet_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
