file(REMOVE_RECURSE
  "CMakeFiles/satnet_sim.dir/event_queue.cpp.o"
  "CMakeFiles/satnet_sim.dir/event_queue.cpp.o.d"
  "libsatnet_sim.a"
  "libsatnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
