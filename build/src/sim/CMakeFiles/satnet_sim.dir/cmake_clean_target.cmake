file(REMOVE_RECURSE
  "libsatnet_sim.a"
)
