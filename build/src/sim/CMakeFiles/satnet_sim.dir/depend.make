# Empty dependencies file for satnet_sim.
# This may be replaced when dependencies are built.
