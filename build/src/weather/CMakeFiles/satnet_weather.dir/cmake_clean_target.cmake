file(REMOVE_RECURSE
  "libsatnet_weather.a"
)
