file(REMOVE_RECURSE
  "CMakeFiles/satnet_weather.dir/weather.cpp.o"
  "CMakeFiles/satnet_weather.dir/weather.cpp.o.d"
  "libsatnet_weather.a"
  "libsatnet_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
