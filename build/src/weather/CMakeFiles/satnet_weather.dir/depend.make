# Empty dependencies file for satnet_weather.
# This may be replaced when dependencies are built.
