# Empty compiler generated dependencies file for satnet_bgp.
# This may be replaced when dependencies are built.
