file(REMOVE_RECURSE
  "libsatnet_bgp.a"
)
