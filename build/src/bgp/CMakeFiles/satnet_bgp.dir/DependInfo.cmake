
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/as_graph.cpp" "src/bgp/CMakeFiles/satnet_bgp.dir/as_graph.cpp.o" "gcc" "src/bgp/CMakeFiles/satnet_bgp.dir/as_graph.cpp.o.d"
  "/root/repo/src/bgp/coverage.cpp" "src/bgp/CMakeFiles/satnet_bgp.dir/coverage.cpp.o" "gcc" "src/bgp/CMakeFiles/satnet_bgp.dir/coverage.cpp.o.d"
  "/root/repo/src/bgp/routeviews.cpp" "src/bgp/CMakeFiles/satnet_bgp.dir/routeviews.cpp.o" "gcc" "src/bgp/CMakeFiles/satnet_bgp.dir/routeviews.cpp.o.d"
  "/root/repo/src/bgp/sno_world.cpp" "src/bgp/CMakeFiles/satnet_bgp.dir/sno_world.cpp.o" "gcc" "src/bgp/CMakeFiles/satnet_bgp.dir/sno_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/satnet_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
