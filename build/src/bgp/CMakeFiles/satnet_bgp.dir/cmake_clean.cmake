file(REMOVE_RECURSE
  "CMakeFiles/satnet_bgp.dir/as_graph.cpp.o"
  "CMakeFiles/satnet_bgp.dir/as_graph.cpp.o.d"
  "CMakeFiles/satnet_bgp.dir/coverage.cpp.o"
  "CMakeFiles/satnet_bgp.dir/coverage.cpp.o.d"
  "CMakeFiles/satnet_bgp.dir/routeviews.cpp.o"
  "CMakeFiles/satnet_bgp.dir/routeviews.cpp.o.d"
  "CMakeFiles/satnet_bgp.dir/sno_world.cpp.o"
  "CMakeFiles/satnet_bgp.dir/sno_world.cpp.o.d"
  "libsatnet_bgp.a"
  "libsatnet_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
