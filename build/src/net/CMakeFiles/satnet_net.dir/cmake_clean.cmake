file(REMOVE_RECURSE
  "CMakeFiles/satnet_net.dir/ipv4.cpp.o"
  "CMakeFiles/satnet_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/satnet_net.dir/route.cpp.o"
  "CMakeFiles/satnet_net.dir/route.cpp.o.d"
  "libsatnet_net.a"
  "libsatnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
