# Empty compiler generated dependencies file for satnet_net.
# This may be replaced when dependencies are built.
