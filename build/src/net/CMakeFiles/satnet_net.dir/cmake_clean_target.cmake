file(REMOVE_RECURSE
  "libsatnet_net.a"
)
