file(REMOVE_RECURSE
  "libsatnet_io.a"
)
