# Empty compiler generated dependencies file for satnet_io.
# This may be replaced when dependencies are built.
