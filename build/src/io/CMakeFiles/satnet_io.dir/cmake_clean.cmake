file(REMOVE_RECURSE
  "CMakeFiles/satnet_io.dir/csv.cpp.o"
  "CMakeFiles/satnet_io.dir/csv.cpp.o.d"
  "CMakeFiles/satnet_io.dir/report.cpp.o"
  "CMakeFiles/satnet_io.dir/report.cpp.o.d"
  "libsatnet_io.a"
  "libsatnet_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
