# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("stats")
subdirs("geo")
subdirs("sim")
subdirs("orbit")
subdirs("net")
subdirs("transport")
subdirs("bgp")
subdirs("weather")
subdirs("dns")
subdirs("http")
subdirs("video")
subdirs("synth")
subdirs("mlab")
subdirs("ripe")
subdirs("prolific")
subdirs("snoid")
subdirs("io")
