# Empty compiler generated dependencies file for satnet_http.
# This may be replaced when dependencies are built.
