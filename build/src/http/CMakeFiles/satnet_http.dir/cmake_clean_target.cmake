file(REMOVE_RECURSE
  "libsatnet_http.a"
)
