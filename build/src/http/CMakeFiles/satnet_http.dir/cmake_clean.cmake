file(REMOVE_RECURSE
  "CMakeFiles/satnet_http.dir/cdn.cpp.o"
  "CMakeFiles/satnet_http.dir/cdn.cpp.o.d"
  "CMakeFiles/satnet_http.dir/loader.cpp.o"
  "CMakeFiles/satnet_http.dir/loader.cpp.o.d"
  "CMakeFiles/satnet_http.dir/page.cpp.o"
  "CMakeFiles/satnet_http.dir/page.cpp.o.d"
  "libsatnet_http.a"
  "libsatnet_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
