file(REMOVE_RECURSE
  "CMakeFiles/satnet_mlab.dir/campaign.cpp.o"
  "CMakeFiles/satnet_mlab.dir/campaign.cpp.o.d"
  "CMakeFiles/satnet_mlab.dir/dataset.cpp.o"
  "CMakeFiles/satnet_mlab.dir/dataset.cpp.o.d"
  "CMakeFiles/satnet_mlab.dir/ndt.cpp.o"
  "CMakeFiles/satnet_mlab.dir/ndt.cpp.o.d"
  "libsatnet_mlab.a"
  "libsatnet_mlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_mlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
