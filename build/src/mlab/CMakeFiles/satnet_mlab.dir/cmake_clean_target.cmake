file(REMOVE_RECURSE
  "libsatnet_mlab.a"
)
