# Empty compiler generated dependencies file for satnet_mlab.
# This may be replaced when dependencies are built.
