# Empty compiler generated dependencies file for satnet_snoid.
# This may be replaced when dependencies are built.
