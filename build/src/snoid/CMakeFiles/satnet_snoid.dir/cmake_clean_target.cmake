file(REMOVE_RECURSE
  "libsatnet_snoid.a"
)
