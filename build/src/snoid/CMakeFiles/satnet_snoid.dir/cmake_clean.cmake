file(REMOVE_RECURSE
  "CMakeFiles/satnet_snoid.dir/analysis.cpp.o"
  "CMakeFiles/satnet_snoid.dir/analysis.cpp.o.d"
  "CMakeFiles/satnet_snoid.dir/pipeline.cpp.o"
  "CMakeFiles/satnet_snoid.dir/pipeline.cpp.o.d"
  "CMakeFiles/satnet_snoid.dir/pop_analysis.cpp.o"
  "CMakeFiles/satnet_snoid.dir/pop_analysis.cpp.o.d"
  "CMakeFiles/satnet_snoid.dir/tcptrace.cpp.o"
  "CMakeFiles/satnet_snoid.dir/tcptrace.cpp.o.d"
  "CMakeFiles/satnet_snoid.dir/validation.cpp.o"
  "CMakeFiles/satnet_snoid.dir/validation.cpp.o.d"
  "libsatnet_snoid.a"
  "libsatnet_snoid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_snoid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
