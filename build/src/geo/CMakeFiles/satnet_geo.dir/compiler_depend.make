# Empty compiler generated dependencies file for satnet_geo.
# This may be replaced when dependencies are built.
