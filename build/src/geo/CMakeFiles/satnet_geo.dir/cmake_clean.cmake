file(REMOVE_RECURSE
  "CMakeFiles/satnet_geo.dir/geodesy.cpp.o"
  "CMakeFiles/satnet_geo.dir/geodesy.cpp.o.d"
  "CMakeFiles/satnet_geo.dir/places.cpp.o"
  "CMakeFiles/satnet_geo.dir/places.cpp.o.d"
  "libsatnet_geo.a"
  "libsatnet_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
