file(REMOVE_RECURSE
  "libsatnet_geo.a"
)
