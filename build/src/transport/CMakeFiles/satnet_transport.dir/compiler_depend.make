# Empty compiler generated dependencies file for satnet_transport.
# This may be replaced when dependencies are built.
