file(REMOVE_RECURSE
  "libsatnet_transport.a"
)
