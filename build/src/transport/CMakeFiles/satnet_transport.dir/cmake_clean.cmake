file(REMOVE_RECURSE
  "CMakeFiles/satnet_transport.dir/linkmodel.cpp.o"
  "CMakeFiles/satnet_transport.dir/linkmodel.cpp.o.d"
  "CMakeFiles/satnet_transport.dir/quic.cpp.o"
  "CMakeFiles/satnet_transport.dir/quic.cpp.o.d"
  "CMakeFiles/satnet_transport.dir/tcp.cpp.o"
  "CMakeFiles/satnet_transport.dir/tcp.cpp.o.d"
  "libsatnet_transport.a"
  "libsatnet_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnet_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
