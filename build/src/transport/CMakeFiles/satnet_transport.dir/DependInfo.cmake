
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/linkmodel.cpp" "src/transport/CMakeFiles/satnet_transport.dir/linkmodel.cpp.o" "gcc" "src/transport/CMakeFiles/satnet_transport.dir/linkmodel.cpp.o.d"
  "/root/repo/src/transport/quic.cpp" "src/transport/CMakeFiles/satnet_transport.dir/quic.cpp.o" "gcc" "src/transport/CMakeFiles/satnet_transport.dir/quic.cpp.o.d"
  "/root/repo/src/transport/tcp.cpp" "src/transport/CMakeFiles/satnet_transport.dir/tcp.cpp.o" "gcc" "src/transport/CMakeFiles/satnet_transport.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/satnet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/satnet_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/satnet_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
