# Empty dependencies file for bench_fig7_pop_map.
# This may be replaced when dependencies are built.
