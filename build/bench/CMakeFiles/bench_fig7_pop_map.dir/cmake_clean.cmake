file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_pop_map.dir/bench_fig7_pop_map.cpp.o"
  "CMakeFiles/bench_fig7_pop_map.dir/bench_fig7_pop_map.cpp.o.d"
  "bench_fig7_pop_map"
  "bench_fig7_pop_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pop_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
