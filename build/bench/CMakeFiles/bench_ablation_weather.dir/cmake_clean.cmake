file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_weather.dir/bench_ablation_weather.cpp.o"
  "CMakeFiles/bench_ablation_weather.dir/bench_ablation_weather.cpp.o.d"
  "bench_ablation_weather"
  "bench_ablation_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
