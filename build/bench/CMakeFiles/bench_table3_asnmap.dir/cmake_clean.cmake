file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_asnmap.dir/bench_table3_asnmap.cpp.o"
  "CMakeFiles/bench_table3_asnmap.dir/bench_table3_asnmap.cpp.o.d"
  "bench_table3_asnmap"
  "bench_table3_asnmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_asnmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
