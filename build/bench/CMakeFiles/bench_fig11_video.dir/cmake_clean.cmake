file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_video.dir/bench_fig11_video.cpp.o"
  "CMakeFiles/bench_fig11_video.dir/bench_fig11_video.cpp.o.d"
  "bench_fig11_video"
  "bench_fig11_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
