file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_tcptrace.dir/bench_ext_tcptrace.cpp.o"
  "CMakeFiles/bench_ext_tcptrace.dir/bench_ext_tcptrace.cpp.o.d"
  "bench_ext_tcptrace"
  "bench_ext_tcptrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tcptrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
