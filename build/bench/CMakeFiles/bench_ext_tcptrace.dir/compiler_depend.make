# Empty compiler generated dependencies file for bench_ext_tcptrace.
# This may be replaced when dependencies are built.
