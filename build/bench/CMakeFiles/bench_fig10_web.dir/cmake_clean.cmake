file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_web.dir/bench_fig10_web.cpp.o"
  "CMakeFiles/bench_fig10_web.dir/bench_fig10_web.cpp.o.d"
  "bench_fig10_web"
  "bench_fig10_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
