file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_speedtest.dir/bench_fig9_speedtest.cpp.o"
  "CMakeFiles/bench_fig9_speedtest.dir/bench_fig9_speedtest.cpp.o.d"
  "bench_fig9_speedtest"
  "bench_fig9_speedtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_speedtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
