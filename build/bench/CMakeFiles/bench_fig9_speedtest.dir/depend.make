# Empty dependencies file for bench_fig9_speedtest.
# This may be replaced when dependencies are built.
