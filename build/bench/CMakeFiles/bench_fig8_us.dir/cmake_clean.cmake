file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_us.dir/bench_fig8_us.cpp.o"
  "CMakeFiles/bench_fig8_us.dir/bench_fig8_us.cpp.o.d"
  "bench_fig8_us"
  "bench_fig8_us.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_us.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
