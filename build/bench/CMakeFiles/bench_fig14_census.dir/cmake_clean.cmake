file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_census.dir/bench_fig14_census.cpp.o"
  "CMakeFiles/bench_fig14_census.dir/bench_fig14_census.cpp.o.d"
  "bench_fig14_census"
  "bench_fig14_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
