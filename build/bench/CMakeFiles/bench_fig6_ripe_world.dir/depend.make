# Empty dependencies file for bench_fig6_ripe_world.
# This may be replaced when dependencies are built.
