file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ripe_world.dir/bench_fig6_ripe_world.cpp.o"
  "CMakeFiles/bench_fig6_ripe_world.dir/bench_fig6_ripe_world.cpp.o.d"
  "bench_fig6_ripe_world"
  "bench_fig6_ripe_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ripe_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
