file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ripe.dir/bench_table2_ripe.cpp.o"
  "CMakeFiles/bench_table2_ripe.dir/bench_table2_ripe.cpp.o.d"
  "bench_table2_ripe"
  "bench_table2_ripe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
