
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_filtering.cpp" "bench/CMakeFiles/bench_fig3_filtering.dir/bench_fig3_filtering.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_filtering.dir/bench_fig3_filtering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prolific/CMakeFiles/satnet_prolific.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/satnet_http.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/satnet_video.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/satnet_io.dir/DependInfo.cmake"
  "/root/repo/build/src/snoid/CMakeFiles/satnet_snoid.dir/DependInfo.cmake"
  "/root/repo/build/src/mlab/CMakeFiles/satnet_mlab.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/satnet_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/satnet_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/satnet_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/weather/CMakeFiles/satnet_weather.dir/DependInfo.cmake"
  "/root/repo/build/src/ripe/CMakeFiles/satnet_ripe.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/satnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/satnet_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/satnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/satnet_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/satnet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/satnet_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
