# Empty dependencies file for bench_ablation_pop.
# This may be replaced when dependencies are built.
