file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pop.dir/bench_ablation_pop.cpp.o"
  "CMakeFiles/bench_ablation_pop.dir/bench_ablation_pop.cpp.o.d"
  "bench_ablation_pop"
  "bench_ablation_pop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
