# Empty compiler generated dependencies file for bench_ext_quic.
# This may be replaced when dependencies are built.
