file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_quic.dir/bench_ext_quic.cpp.o"
  "CMakeFiles/bench_ext_quic.dir/bench_ext_quic.cpp.o.d"
  "bench_ext_quic"
  "bench_ext_quic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
