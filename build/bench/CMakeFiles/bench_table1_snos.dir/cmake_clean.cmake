file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_snos.dir/bench_table1_snos.cpp.o"
  "CMakeFiles/bench_table1_snos.dir/bench_table1_snos.cpp.o.d"
  "bench_table1_snos"
  "bench_table1_snos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_snos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
