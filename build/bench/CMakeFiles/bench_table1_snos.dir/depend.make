# Empty dependencies file for bench_table1_snos.
# This may be replaced when dependencies are built.
