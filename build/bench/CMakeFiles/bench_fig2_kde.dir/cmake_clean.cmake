file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_kde.dir/bench_fig2_kde.cpp.o"
  "CMakeFiles/bench_fig2_kde.dir/bench_fig2_kde.cpp.o.d"
  "bench_fig2_kde"
  "bench_fig2_kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
