file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_orbits.dir/bench_fig4_orbits.cpp.o"
  "CMakeFiles/bench_fig4_orbits.dir/bench_fig4_orbits.cpp.o.d"
  "bench_fig4_orbits"
  "bench_fig4_orbits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_orbits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
