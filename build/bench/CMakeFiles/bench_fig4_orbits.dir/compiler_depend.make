# Empty compiler generated dependencies file for bench_fig4_orbits.
# This may be replaced when dependencies are built.
