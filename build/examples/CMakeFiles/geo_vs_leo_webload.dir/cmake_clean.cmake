file(REMOVE_RECURSE
  "CMakeFiles/geo_vs_leo_webload.dir/geo_vs_leo_webload.cpp.o"
  "CMakeFiles/geo_vs_leo_webload.dir/geo_vs_leo_webload.cpp.o.d"
  "geo_vs_leo_webload"
  "geo_vs_leo_webload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_vs_leo_webload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
