# Empty dependencies file for geo_vs_leo_webload.
# This may be replaced when dependencies are built.
