# Empty dependencies file for starlink_pop_explorer.
# This may be replaced when dependencies are built.
