file(REMOVE_RECURSE
  "CMakeFiles/starlink_pop_explorer.dir/starlink_pop_explorer.cpp.o"
  "CMakeFiles/starlink_pop_explorer.dir/starlink_pop_explorer.cpp.o.d"
  "starlink_pop_explorer"
  "starlink_pop_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlink_pop_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
