# Empty compiler generated dependencies file for identify_snos.
# This may be replaced when dependencies are built.
