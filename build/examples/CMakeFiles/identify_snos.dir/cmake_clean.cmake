file(REMOVE_RECURSE
  "CMakeFiles/identify_snos.dir/identify_snos.cpp.o"
  "CMakeFiles/identify_snos.dir/identify_snos.cpp.o.d"
  "identify_snos"
  "identify_snos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identify_snos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
