# Empty compiler generated dependencies file for satnetctl.
# This may be replaced when dependencies are built.
