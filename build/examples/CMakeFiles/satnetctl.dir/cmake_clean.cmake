file(REMOVE_RECURSE
  "CMakeFiles/satnetctl.dir/satnetctl.cpp.o"
  "CMakeFiles/satnetctl.dir/satnetctl.cpp.o.d"
  "satnetctl"
  "satnetctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satnetctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
