# Empty dependencies file for constellation_tour.
# This may be replaced when dependencies are built.
