file(REMOVE_RECURSE
  "CMakeFiles/constellation_tour.dir/constellation_tour.cpp.o"
  "CMakeFiles/constellation_tour.dir/constellation_tour.cpp.o.d"
  "constellation_tour"
  "constellation_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constellation_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
