file(REMOVE_RECURSE
  "CMakeFiles/weather_test.dir/weather_test.cpp.o"
  "CMakeFiles/weather_test.dir/weather_test.cpp.o.d"
  "weather_test"
  "weather_test.pdb"
  "weather_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
