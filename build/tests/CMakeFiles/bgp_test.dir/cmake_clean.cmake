file(REMOVE_RECURSE
  "CMakeFiles/bgp_test.dir/bgp_test.cpp.o"
  "CMakeFiles/bgp_test.dir/bgp_test.cpp.o.d"
  "bgp_test"
  "bgp_test.pdb"
  "bgp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
