file(REMOVE_RECURSE
  "CMakeFiles/snoid_test.dir/snoid_test.cpp.o"
  "CMakeFiles/snoid_test.dir/snoid_test.cpp.o.d"
  "snoid_test"
  "snoid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
