# Empty compiler generated dependencies file for snoid_test.
# This may be replaced when dependencies are built.
