file(REMOVE_RECURSE
  "CMakeFiles/mlab_test.dir/mlab_test.cpp.o"
  "CMakeFiles/mlab_test.dir/mlab_test.cpp.o.d"
  "mlab_test"
  "mlab_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
