# Empty dependencies file for mlab_test.
# This may be replaced when dependencies are built.
