file(REMOVE_RECURSE
  "CMakeFiles/pop_analysis_test.dir/pop_analysis_test.cpp.o"
  "CMakeFiles/pop_analysis_test.dir/pop_analysis_test.cpp.o.d"
  "pop_analysis_test"
  "pop_analysis_test.pdb"
  "pop_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pop_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
