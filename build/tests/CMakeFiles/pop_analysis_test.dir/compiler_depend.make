# Empty compiler generated dependencies file for pop_analysis_test.
# This may be replaced when dependencies are built.
