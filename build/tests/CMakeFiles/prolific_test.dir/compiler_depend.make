# Empty compiler generated dependencies file for prolific_test.
# This may be replaced when dependencies are built.
