file(REMOVE_RECURSE
  "CMakeFiles/prolific_test.dir/prolific_test.cpp.o"
  "CMakeFiles/prolific_test.dir/prolific_test.cpp.o.d"
  "prolific_test"
  "prolific_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prolific_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
