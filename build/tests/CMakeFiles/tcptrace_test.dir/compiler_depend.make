# Empty compiler generated dependencies file for tcptrace_test.
# This may be replaced when dependencies are built.
