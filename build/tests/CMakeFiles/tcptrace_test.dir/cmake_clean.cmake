file(REMOVE_RECURSE
  "CMakeFiles/tcptrace_test.dir/tcptrace_test.cpp.o"
  "CMakeFiles/tcptrace_test.dir/tcptrace_test.cpp.o.d"
  "tcptrace_test"
  "tcptrace_test.pdb"
  "tcptrace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcptrace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
