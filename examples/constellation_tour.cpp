// Constellation tour: watch the orbital mechanics that drive everything —
// serving-satellite selection, 15-second reconfigurations, handoffs, and
// the latency breakdown of a bent-pipe path, for a terminal in Seattle.
#include <cstdio>
#include <memory>

#include "orbit/access.hpp"

int main() {
  using namespace satnet;

  std::printf("== Starlink constellation tour ==\n\n");
  const auto constellation =
      std::make_shared<orbit::Constellation>(orbit::starlink_shells());
  std::printf("constellation: %zu satellites in %zu shells\n",
              constellation->total_sats(), constellation->shells().size());
  for (const auto& shell : constellation->shells()) {
    std::printf("  %-16s %4.0f km, %5.1f deg, %zux%zu, period %.1f min\n",
                shell.name.c_str(), shell.altitude_km, shell.inclination_deg,
                shell.planes, shell.sats_per_plane, shell.period_sec() / 60.0);
  }

  const geo::GeoPoint seattle{47.61, -122.33, 0};
  std::printf("\nvisible satellites from Seattle at t=0 (elevation >= 25 deg): %zu\n",
              constellation->visible(seattle, 0.0, 25.0).size());

  const auto net = orbit::make_starlink_access(constellation);
  std::printf("\nfive minutes of 15-second reconfiguration epochs:\n");
  std::printf("  %6s %22s %6s %8s %8s %8s %8s %s\n", "t(s)", "serving sat", "elev",
              "up ms", "down ms", "bkhl ms", "1-way", "");
  for (double t = 0; t <= 300; t += 15) {
    const auto s = net.sample_with_handoff(seattle, t);
    if (!s.reachable) {
      std::printf("  %6.0f (outage)\n", t);
      continue;
    }
    const auto pos = constellation->position(*s.serving_sat, t);
    char sat_name[32];
    std::snprintf(sat_name, sizeof(sat_name), "shell%zu p%02zu i%02zu",
                  s.serving_sat->shell, s.serving_sat->plane, s.serving_sat->index);
    std::printf("  %6.0f %22s %5.1f° %8.2f %8.2f %8.2f %8.2f %s\n", t, sat_name,
                geo::elevation_deg(seattle, pos), s.up_ms, s.down_ms, s.backhaul_ms,
                s.one_way_ms, s.handoff ? "<- handoff" : "");
  }

  const auto hs = orbit::measure_handoffs(net, seattle, 0.0, 2 * 3600.0);
  std::printf("\ntwo hours of epochs: %zu handoffs over %zu epochs, mean dwell %.0f s "
              "(max %.0f s), outage fraction %.3f\n",
              hs.handoffs, hs.epochs, hs.mean_dwell_sec, hs.max_dwell_sec,
              hs.outage_fraction);
  if (hs.censored) {
    std::printf("(final dwell right-censored at %.0f s — still serving when the "
                "window closed, excluded from mean/max)\n",
                hs.censored_dwell_sec);
  }

  std::printf("\nGEO comparison (Viasat-style bent pipe from Denver teleport):\n");
  const auto geo_net = orbit::make_geo_access("denver", -101.0, 45.0);
  const auto s = geo_net.sample({39.0, -98.0, 0}, 0.0);
  std::printf("  up %.1f ms + down %.1f ms + scheduling %.1f ms = one-way %.1f ms "
              "(RTT %.0f ms)\n",
              s.up_ms, s.down_ms, s.scheduling_ms, s.one_way_ms, 2 * s.one_way_ms);
  return 0;
}
