// GEO vs LEO for web applications: the paper's §6 message, condensed.
// For one Starlink user and one Viasat user, compare CDN choices,
// HTTP/1.1 vs HTTP/2 page loads, DNS deployments, and a video session.
#include <cstdio>

#include "dns/resolver.hpp"
#include "geo/places.hpp"
#include "http/cdn.hpp"
#include "http/loader.hpp"
#include "synth/world.hpp"
#include "video/abr_player.hpp"

int main() {
  using namespace satnet;

  std::printf("== GEO vs LEO web performance ==\n\n");
  const synth::World world;
  stats::Rng rng(7);

  const struct {
    const char* sno;
    const char* city;
    const char* country;
  } users[] = {{"starlink", "denver", "US"}, {"viasat", "denver", "US"}};

  for (const auto& u : users) {
    const auto sub =
        world.make_subscriber(u.sno, geo::city_point(u.city), u.country, rng);
    const auto path = world.sample_path(sub, 3600.0, rng);
    if (!path.ok) continue;
    std::printf("[%s subscriber in %s]  access RTT %.0f ms, plan %.0f Mbps\n",
                u.sno, u.city, path.download.base_rtt_ms, sub.plan_down_mbps);

    // CDN shootout for jquery.min.js.
    std::printf("  CDN fetch of jquery.min.js:");
    for (const auto& cdn : http::cdn_providers()) {
      double total = 0;
      for (int i = 0; i < 7; ++i) {
        total += http::cdn_fetch_ms(cdn, http::JqueryVariant::minified,
                                    path.download, rng);
      }
      std::printf(" %s=%.0fms", std::string(cdn.name).c_str(), total / 7);
    }
    std::printf("\n");

    // H1 vs H2 on the Akamai demo page.
    const auto page = http::akamai_demo_page();
    const auto h1 = http::load_page(page, http::HttpVersion::h1, path.download, rng);
    const auto h2 = http::load_page(page, http::HttpVersion::h2, path.download, rng);
    std::printf("  Akamai demo page: HTTP/1.1 %.1f s vs HTTP/2 %.1f s%s\n",
                h1.plt_ms / 1e3, h2.plt_ms / 1e3, h1.timed_out ? " (H1 timed out)" : "");

    // DNS: ISP-provided resolver placement.
    const bool at_pop = std::string(u.sno) == "starlink";
    dns::Resolver resolver({at_pop, at_pop ? 60.0 : 330.0, 0.3, 300.0},
                           rng.fork(u.sno));
    const auto lookup = resolver.lookup("news.example", 0.0, path.download.base_rtt_ms);
    std::printf("  uncached DNS lookup via ISP resolver: %.0f ms\n", lookup.time_ms);

    // A minute of YouTube.
    const auto yt = video::play_session(path.download, rng);
    std::printf("  YouTube 60 s: median %s, buffer %.0f s, %.1f%% frames dropped, "
                "%d stalls\n\n",
                std::string(yt.median_rendition).c_str(), yt.mean_buffer_sec,
                yt.dropped_frame_frac * 100, yt.n_stalls);
  }

  std::printf("takeaway (paper §6): pick a PoP-peered CDN, use HTTP/2, and on GEO\n"
              "prefer a cloud resolver — each recovers a large share of the gap.\n");
  return 0;
}
