// Starlink PoP explorer: runs a RIPE-Atlas-style campaign, prints a live
// traceroute from a chosen probe, the per-country PoP RTT summary, and
// every detected PoP migration — the content of the paper's §5.
#include <cstdio>
#include <memory>

#include "ripe/atlas.hpp"
#include "snoid/pop_analysis.hpp"

int main() {
  using namespace satnet;

  std::printf("== Starlink PoP explorer ==\n\n");

  // A one-shot traceroute from the Manila probe: watch the CGNAT hop and
  // the Tokyo PoP in the path.
  const auto starlink = orbit::make_starlink_access(
      std::make_shared<orbit::Constellation>(orbit::starlink_shells()));
  const auto probes = ripe::starlink_probe_candidates();
  for (const auto& probe : probes) {
    if (probe.country != "PH") continue;
    stats::Rng rng(1);
    std::printf("traceroute from the Manila probe to the J root:\n%s\n",
                net::to_string(
                    ripe::build_traceroute(starlink, probe, 320 * 86400.0, 'J', rng))
                    .c_str());
    const net::Ipv4 ip = ripe::probe_public_ip(probe, /*pop=*/16);
    std::printf("probe public address %s reverse-resolves to %s\n\n",
                ip.to_string().c_str(), ripe::reverse_dns(ip, starlink).c_str());
  }

  // A compact campaign (half a year, daily rounds) and its analyses.
  ripe::AtlasConfig cfg;
  cfg.duration_days = 366.0;
  cfg.round_interval_hours = 24.0;
  std::printf("running a one-year built-in campaign...\n");
  const auto dataset = ripe::run_atlas_campaign(cfg);
  std::printf("validated probes: %zu of %zu candidates, %zu traceroutes\n\n",
              ripe::validated_probe_ids(dataset).size(), dataset.probes.size(),
              dataset.traceroutes.size());

  std::printf("probe->PoP RTT by country (non-US):\n");
  for (const auto& row : snoid::pop_rtt_by_country(dataset, /*us_only=*/false)) {
    std::printf("  %-4s median %.1f ms\n", row.key.c_str(), row.rtt.median);
  }

  std::printf("\ndetected PoP migrations:\n");
  for (const auto& m : snoid::detect_pop_migrations(dataset)) {
    std::printf("  probe %d (%s) day %3.0f: %-9s -> %-9s (%.0f -> %.0f ms)\n",
                m.probe_id, m.country.c_str(), m.day, m.from_pop.c_str(),
                m.to_pop.c_str(), m.rtt_before_ms, m.rtt_after_ms);
  }
  return 0;
}
