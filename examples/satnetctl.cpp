// satnetctl: command-line driver for the library — run campaigns, the
// identification pipeline, the RIPE campaign, or the census, and export
// datasets as CSV for external plotting.
//
// Usage:
//   satnetctl campaign [--scale S] [--out FILE]   M-Lab NDT campaign -> CSV
//   satnetctl pipeline [--scale S]                identification summary
//   satnetctl atlas [--days D] [--out FILE]       RIPE campaign -> CSV
//   satnetctl census                              Prolific census funnel
//   satnetctl world --seed N [--check]            print a generated scenario
//                                                 spec; --check runs the
//                                                 invariant catalog on it
//   satnetctl tle FILE [--t SEC]                  load a TLE catalog and print
//                                                 SGP4 positions at sim time t
//
// `world` accepts --orbit-model walker|sgp4 (also --orbit-model=...) to
// force the LEO network's ephemeris backend instead of the seeded draw.
//
// Every campaign-running command accepts --threads N (0 = one worker per
// hardware thread, the default). Output is identical for every value —
// the sharded runtime is deterministic in (seed, config) only.
//
// Observability: every command additionally accepts
//   --metrics-out PATH   Prometheus text export ("-" = stdout)
//   --trace-out PATH     JSON-lines manifest + metrics + spans
// When either is given a human-readable metrics summary is printed at
// the end of the run. Exports are wall-clock telemetry only; simulation
// output stays byte-identical with or without them.
//
// Flight recorder: every command accepts
//   --recorder-out PATH        drain the flight recorder to JSONL
//                              ("-" = stdout); postmortems on abort-mode
//                              failure land at PATH.postmortem
//   --recorder-ring N          per-shard ring capacity (default 512)
//   --watchdog-ms N            ThreadPool watchdog poll interval
//                              (default 0 = off)
//   --watchdog-threshold-ms X  stall threshold for the pool watchdog
// Recorder and watchdog are observation-only: output stays
// byte-identical with or without them.
//
// Fault injection: every campaign-running command accepts
//   --fault-plan PATH    install a fault plan (see src/fault) for the run
//   --retries N          attempts per shard before quarantine (default 1)
//   --degrade            complete the campaign with degraded accounting
//                        instead of aborting on shard failure
// The active plan and its event summary land in the run manifest.
//
// Ablation: --no-access-cache disables the access-interval visibility
// index (src/orbit/access_index.*) so every sample re-runs the full
// cone-prefilter sweep. Output is byte-identical either way.
//
// Timeline: campaign-running commands precompute the epoch timeline
// before sharding (src/orbit/timeline.*) and replay it as pure lookups.
//   --no-timeline        ablate the precompute (on-demand oracle path)
//   --timeline-in PATH   warm-start from a saved timeline file
//   --timeline-out PATH  save the built timeline for later warm starts
// Output is byte-identical in every mode; a rejected --timeline-in file
// prints one diagnostic and the run falls back to an in-memory build.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>

#include "fault/hook.hpp"
#include "io/csv.hpp"
#include "io/report.hpp"
#include "io/timeline_io.hpp"
#include "matrix/invariants.hpp"
#include "mlab/campaign.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orbit/access_index.hpp"
#include "orbit/constellation.hpp"
#include "orbit/propagator.hpp"
#include "orbit/sgp4.hpp"
#include "orbit/timeline.hpp"
#include "prolific/census.hpp"
#include "ripe/atlas.hpp"
#include "runtime/thread_pool.hpp"
#include "snoid/pipeline.hpp"
#include "synth/world.hpp"
#include "synth/worldgen.hpp"

namespace {

using namespace satnet;

const char* flag_value(int argc, char** argv, const char* name, const char* fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 2; i < argc; ++i) {
    // Both "--flag value" and "--flag=value" spellings.
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[i + 1];
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return fallback;
}

unsigned threads_flag(int argc, char** argv) {
  const char* raw = flag_value(argc, argv, "--threads", "0");
  char* end = nullptr;
  const unsigned long n = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0') {
    std::fprintf(stderr, "satnetctl: --threads expects a number, got '%s'\n", raw);
    std::exit(2);
  }
  return static_cast<unsigned>(n);
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

runtime::RetryPolicy retry_flags(int argc, char** argv) {
  runtime::RetryPolicy policy;
  const char* raw = flag_value(argc, argv, "--retries", "1");
  char* end = nullptr;
  const unsigned long n = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || n == 0) {
    std::fprintf(stderr, "satnetctl: --retries expects a number >= 1, got '%s'\n", raw);
    std::exit(2);
  }
  policy.max_attempts = static_cast<std::size_t>(n);
  policy.degrade = has_flag(argc, argv, "--degrade");
  return policy;
}

void print_campaign_report(const runtime::CampaignReport& report) {
  if (report.clean()) return;
  std::printf("campaign '%s': %zu shards, %zu retries, %zu degraded\n",
              report.phase.c_str(), report.shards, report.retries, report.degraded);
  for (std::size_t i = 0; i < report.degraded_shards.size(); ++i) {
    std::printf("  degraded shard %zu: %s\n", report.degraded_shards[i],
                report.degraded_errors[i].c_str());
  }
}

int cmd_campaign(int argc, char** argv) {
  const double scale = std::stod(flag_value(argc, argv, "--scale", "0.0005"));
  const std::string out_path = flag_value(argc, argv, "--out", "ndt.csv");
  synth::World world;
  mlab::CampaignConfig cfg;
  cfg.volume_scale = scale;
  cfg.threads = threads_flag(argc, argv);
  cfg.retry = retry_flags(argc, argv);
  runtime::CampaignReport report;
  const auto dataset = mlab::run_campaign(world, cfg, &report);
  print_campaign_report(report);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  const std::size_t rows = io::export_ndt(dataset, out);
  std::printf("wrote %zu NDT records to %s\n", rows, out_path.c_str());
  return 0;
}

int cmd_pipeline(int argc, char** argv) {
  const double scale = std::stod(flag_value(argc, argv, "--scale", "0.0005"));
  const std::string out_path = flag_value(argc, argv, "--out", "");
  synth::World world;
  mlab::CampaignConfig cfg;
  cfg.volume_scale = scale;
  cfg.threads = threads_flag(argc, argv);
  cfg.retry = retry_flags(argc, argv);
  runtime::CampaignReport report;
  const auto dataset = mlab::run_campaign(world, cfg, &report);
  print_campaign_report(report);
  snoid::PipelineConfig pcfg;
  pcfg.threads = cfg.threads;
  pcfg.retry = cfg.retry;
  const auto result = snoid::run_pipeline(dataset, pcfg);
  std::printf("%s", snoid::describe(result).c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    io::export_pipeline(result, out);
    std::printf("wrote per-operator results to %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_atlas(int argc, char** argv) {
  const double days = std::stod(flag_value(argc, argv, "--days", "90"));
  const std::string out_path = flag_value(argc, argv, "--out", "traceroutes.csv");
  ripe::AtlasConfig cfg;
  cfg.duration_days = days;
  cfg.round_interval_hours = 24.0;
  cfg.threads = threads_flag(argc, argv);
  cfg.retry = retry_flags(argc, argv);
  const auto dataset = ripe::run_atlas_campaign(cfg);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  const std::size_t rows = io::export_traceroutes(dataset, out);
  std::printf("validated probes: %zu; wrote %zu traceroutes to %s\n",
              ripe::validated_probe_ids(dataset).size(), rows, out_path.c_str());
  return 0;
}

int cmd_report(int argc, char** argv) {
  const double scale = std::stod(flag_value(argc, argv, "--scale", "0.0005"));
  const std::string out_path = flag_value(argc, argv, "--out", "report.md");
  synth::World world;
  mlab::CampaignConfig mc;
  mc.volume_scale = scale;
  mc.threads = threads_flag(argc, argv);
  mc.retry = retry_flags(argc, argv);
  runtime::CampaignReport report;
  const auto dataset = mlab::run_campaign(world, mc, &report);
  print_campaign_report(report);
  snoid::PipelineConfig pcfg;
  pcfg.threads = mc.threads;
  pcfg.retry = mc.retry;
  const auto result = snoid::run_pipeline(dataset, pcfg);
  ripe::AtlasConfig ac;
  ac.duration_days = 366.0;
  ac.round_interval_hours = 24.0;
  ac.threads = mc.threads;
  ac.retry = mc.retry;
  const auto atlas = ripe::run_atlas_campaign(ac);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << io::study_report(dataset, result, atlas);
  std::printf("wrote study report to %s\n", out_path.c_str());
  return 0;
}

int cmd_world(int argc, char** argv) {
  const char* raw = flag_value(argc, argv, "--seed", "");
  if (*raw == '\0') {
    std::fprintf(stderr, "satnetctl world: --seed N is required\n");
    return 2;
  }
  char* end = nullptr;
  const unsigned long long seed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') {
    std::fprintf(stderr, "satnetctl world: --seed expects a number, got '%s'\n", raw);
    return 2;
  }
  synth::ScenarioSpec spec = synth::generate_scenario(seed);
  const std::string model_raw = flag_value(argc, argv, "--orbit-model", "");
  if (!model_raw.empty()) {
    const auto model = orbit::parse_orbit_model(model_raw);
    if (!model) {
      std::fprintf(stderr, "satnetctl world: --orbit-model expects walker|sgp4, got '%s'\n",
                   model_raw.c_str());
      return 2;
    }
    for (auto& net : spec.networks) {
      if (net.orbit != orbit::OrbitClass::geo) net.model = *model;
    }
  }
  std::printf("%s", spec.to_text().c_str());
  std::printf("# %s\n", spec.summary().c_str());
  if (has_flag(argc, argv, "--check")) {
    const auto violation = matrix::check_spec(spec);
    if (violation.has_value()) {
      std::fprintf(stderr, "invariant violation: %s: %s\n",
                   violation->invariant.c_str(), violation->detail.c_str());
      return 1;
    }
    std::printf("# invariants: thread-identity ablation-identity flow-conservation "
                "monotone-degradation finite-metrics all ok\n");
  }
  return 0;
}

int cmd_tle(int argc, char** argv) {
  if (argc < 3 || argv[2][0] == '-') {
    std::fprintf(stderr, "satnetctl tle: usage: satnetctl tle FILE [--t SEC]\n");
    return 2;
  }
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "satnetctl tle: cannot open %s\n", argv[2]);
    return 2;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string err;
  auto catalog = orbit::parse_tle_catalog(text, &err);
  if (!catalog) {
    std::fprintf(stderr, "satnetctl tle: %s: %s\n", argv[2], err.c_str());
    return 2;
  }
  const double t = std::stod(flag_value(argc, argv, "--t", "0"));
  const orbit::Constellation c = orbit::Constellation::from_tles(std::move(*catalog));
  const auto& prop = static_cast<const orbit::Sgp4Propagator&>(c.propagator());
  std::printf("catalog %s: %zu satellites, epoch jd %.8f, t=%gs\n", argv[2],
              c.total_sats(), prop.epoch_jd(), t);
  for (std::size_t i = 0; i < c.total_sats(); ++i) {
    const orbit::Tle& tle = prop.tles()[i];
    const geo::GeoPoint pos = c.position(orbit::SatId{0, 0, i}, t);
    if (pos.alt_km < 0.0) {
      std::printf("%5u %-14s decayed\n", tle.satnum,
                  tle.name.empty() ? "-" : tle.name.c_str());
    } else {
      std::printf("%5u %-14s lat=%9.4f lon=%9.4f alt=%9.2f km\n", tle.satnum,
                  tle.name.empty() ? "-" : tle.name.c_str(), pos.lat_deg, pos.lon_deg,
                  pos.alt_km);
    }
  }
  return 0;
}

int cmd_census(int, char**) {
  prolific::TesterPool pool;
  stats::Rng rng(1);
  const auto out = pool.run_census(rng);
  std::printf("prescreened %zu -> responded %zu -> verified %zu\n",
              out.prescreen_claimed, out.prescreen_responded, out.prescreen_verified);
  std::printf("open census %zu participants -> %zu on SNOs\n", out.open_participants,
              out.open_verified);
  for (const auto& [sno, n] : out.verified_by_sno) {
    std::printf("  %-10s %zu\n", sno.c_str(), n);
  }
  return 0;
}

int run_command(const std::string& cmd, int argc, char** argv) {
  if (cmd == "campaign") return cmd_campaign(argc, argv);
  if (cmd == "pipeline") return cmd_pipeline(argc, argv);
  if (cmd == "atlas") return cmd_atlas(argc, argv);
  if (cmd == "census") return cmd_census(argc, argv);
  if (cmd == "report") return cmd_report(argc, argv);
  if (cmd == "world") return cmd_world(argc, argv);
  if (cmd == "tle") return cmd_tle(argc, argv);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: satnetctl <campaign|pipeline|atlas|census|report|world|tle> [flags]\n"
                 "  campaign [--scale S] [--out FILE] [--threads N]\n"
                 "  pipeline [--scale S] [--out FILE] [--threads N]\n"
                 "  atlas    [--days D]  [--out FILE] [--threads N]\n"
                 "  census\n"
                 "  report   [--scale S] [--out FILE] [--threads N]\n"
                 "  world    --seed N [--check] [--orbit-model walker|sgp4]\n"
                 "           print the generated scenario spec for a matrix\n"
                 "           seed; --check runs the full invariant catalog on\n"
                 "           it (exit 1 on violation); --orbit-model forces\n"
                 "           the ephemeris backend instead of the seeded draw\n"
                 "  tle      FILE [--t SEC]       load a TLE catalog fleet and\n"
                 "           print SGP4-propagated positions at sim time t\n"
                 "every command also accepts --metrics-out PATH (Prometheus\n"
                 "text) and --trace-out PATH (JSON lines); '-' = stdout,\n"
                 "--recorder-out PATH [--recorder-ring N] to drain the\n"
                 "flight recorder to JSONL (postmortems at PATH.postmortem),\n"
                 "--watchdog-ms N [--watchdog-threshold-ms X] to poll for\n"
                 "stalled pool workers,\n"
                 "and --fault-plan PATH [--retries N] [--degrade] to inject\n"
                 "a deterministic fault schedule (see README, src/fault)\n"
                 "--no-access-cache ablates the access-interval index\n"
                 "(byte-identical output, slower sampling)\n"
                 "--no-timeline ablates the epoch-timeline precompute;\n"
                 "--timeline-in PATH warm-starts from a saved timeline and\n"
                 "--timeline-out PATH saves the built one (byte-identical\n"
                 "output in every mode)\n"
                 "--threads 0 (default) uses one worker per hardware thread;\n"
                 "output is identical for every thread count\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (has_flag(argc, argv, "--no-access-cache")) {
    orbit::set_access_cache_enabled(false);
  }
  if (has_flag(argc, argv, "--no-timeline")) {
    orbit::set_timeline_enabled(false);
  }
  const std::string timeline_in = flag_value(argc, argv, "--timeline-in", "");
  const std::string timeline_out = flag_value(argc, argv, "--timeline-out", "");
  if (!timeline_in.empty()) {
    io::TimelineFileInfo tinfo;
    const std::string err = io::load_timelines(timeline_in, &tinfo);
    if (err.empty()) {
      std::printf("timeline %s: %zu networks, %zu bytes\n", timeline_in.c_str(),
                  tinfo.networks, tinfo.bytes);
    } else {
      // Deliberately not fatal: the run builds in memory and produces
      // the same bytes — the warm start is an optimisation only.
      std::fprintf(stderr, "satnetctl: %s\n", err.c_str());
    }
  }
  const std::string metrics_out = flag_value(argc, argv, "--metrics-out", "");
  const std::string trace_out = flag_value(argc, argv, "--trace-out", "");
  const std::string recorder_out = flag_value(argc, argv, "--recorder-out", "");
  if (!recorder_out.empty()) {
    obs::FlightRecorder& rec = obs::FlightRecorder::global();
    rec.set_enabled(true);
    const char* ring = flag_value(argc, argv, "--recorder-ring", "");
    if (*ring != '\0') {
      rec.set_ring_capacity(static_cast<std::size_t>(std::strtoul(ring, nullptr, 10)));
    }
    if (recorder_out != "-") rec.set_postmortem_path(recorder_out + ".postmortem");
  }
  {
    const char* poll = flag_value(argc, argv, "--watchdog-ms", "");
    const char* thresh = flag_value(argc, argv, "--watchdog-threshold-ms", "");
    if (*poll != '\0' || *thresh != '\0') {
      runtime::set_pool_watchdog(
          *poll != '\0' ? static_cast<unsigned>(std::strtoul(poll, nullptr, 10))
                        : runtime::pool_watchdog_poll_ms(),
          *thresh != '\0' ? std::strtod(thresh, nullptr)
                          : runtime::pool_watchdog_threshold_ms());
    }
  }
  const std::string fault_plan_path = flag_value(argc, argv, "--fault-plan", "");
  std::string fault_plan_summary;
  if (!fault_plan_path.empty()) {
    try {
      fault::FaultPlan plan = fault::FaultPlan::load_file(fault_plan_path);
      fault_plan_summary = plan.summary();
      fault::Hook::install(std::move(plan));
      std::printf("fault plan %s: %s\n", fault_plan_path.c_str(),
                  fault_plan_summary.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "satnetctl: %s\n", e.what());
      return 2;
    }
  }
  if (!trace_out.empty()) obs::Tracer::global().set_enabled(true);
  // satlint:allow(nondet-source): run-manifest wall-clock; results never read it
  const auto start = std::chrono::steady_clock::now();

  const int rc = run_command(cmd, argc, argv);

  if (rc == 0 && !timeline_out.empty()) {
    std::string stamp = "satnetctl";
    for (int i = 1; i < argc; ++i) {
      stamp += ' ';
      stamp += argv[i];
    }
    const std::string err = io::save_timelines(timeline_out, stamp);
    if (!err.empty()) {
      std::fprintf(stderr, "satnetctl: %s\n", err.c_str());
    } else {
      std::printf("saved timeline to %s\n", timeline_out.c_str());
    }
  }
  if (rc == 0) {
    const std::string tl = orbit::timeline_summary_line();
    if (!tl.empty()) std::printf("%s\n", tl.c_str());
  }

  if (rc == 0 && (!metrics_out.empty() || !trace_out.empty() ||
                  !recorder_out.empty())) {
    obs::RunManifest manifest;
    manifest.tool = "satnetctl " + cmd;
    for (int i = 0; i < argc; ++i) {
      if (i > 0) manifest.command += ' ';
      manifest.command += argv[i];
    }
    manifest.threads = runtime::resolve_threads(threads_flag(argc, argv));
    if (!fault_plan_path.empty()) {
      manifest.notes.emplace_back("fault_plan", fault_plan_path);
      manifest.notes.emplace_back("fault_events", fault_plan_summary);
    }
    manifest.wall_ms = std::chrono::duration<double, std::milli>(
                           // satlint:allow(nondet-source): run-manifest wall-clock; results never read it
                           std::chrono::steady_clock::now() - start)
                           .count();
    const obs::Snapshot snap = obs::MetricsRegistry::global().scrape();
    // Drain the recorder once; events ride --trace-out and --recorder-out.
    std::vector<obs::ResolvedEvent> events;
    if (obs::FlightRecorder::global().enabled()) {
      events = obs::FlightRecorder::global().drain();
    }
    if (!metrics_out.empty()) obs::write_metrics_file(metrics_out, snap, manifest);
    if (!trace_out.empty()) {
      obs::write_trace_file(trace_out, snap, obs::Tracer::global().drain(),
                            events, manifest);
    }
    if (!recorder_out.empty()) {
      std::FILE* f = recorder_out == "-" ? stdout
                                         : std::fopen(recorder_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "satnetctl: cannot open %s\n", recorder_out.c_str());
      } else {
        std::fprintf(f, "%s\n", obs::manifest_json(manifest).c_str());
        std::fputs(obs::events_jsonl(events).c_str(), f);
        if (f != stdout) std::fclose(f);
      }
    }
    std::printf("%s", obs::summary_text(snap, manifest).c_str());
  }
  return rc;
}
