// Quickstart: build the synthetic world, run a small M-Lab campaign,
// feed it to the SNO identification pipeline, and print what it found.
//
// This is the 60-second tour of the library's main loop:
//   World -> NDT campaign -> pipeline -> per-operator results + scoring.
#include <cstdio>

#include "mlab/campaign.hpp"
#include "snoid/analysis.hpp"
#include "snoid/pipeline.hpp"
#include "synth/world.hpp"

int main() {
  using namespace satnet;

  std::printf("== satnetperf quickstart ==\n\n");

  // 1. The ground-truth world: constellations, access networks, and a
  //    subscriber population across all catalogued operators.
  synth::World world;
  std::printf("world: %zu subscribers across %zu catalogued operators\n",
              world.subscribers().size(), world.specs().size());

  // 2. A scaled-down M-Lab NDT campaign (the paper mined 11.9M tests;
  //    volume_scale trims that to something a laptop enjoys).
  mlab::CampaignConfig campaign;
  campaign.volume_scale = 0.0005;
  campaign.min_tests_per_sno = 25;
  const mlab::NdtDataset dataset = mlab::run_campaign(world, campaign);
  std::printf("campaign: %zu NDT speed tests collected\n\n", dataset.size());

  // 3. The identification pipeline (the paper's Figure 1).
  const snoid::PipelineResult result = snoid::run_pipeline(dataset);
  std::printf("%s\n", snoid::describe(result).c_str());

  // 4. A taste of the cross-orbit analysis: median latency by orbit.
  for (const auto& [orbit_class, subset] : snoid::retained_by_orbit(result)) {
    if (subset.empty()) continue;
    const auto lat = dataset.field(subset, &mlab::NdtRecord::latency_p5_ms);
    const auto s = stats::summarize(lat);
    std::printf("%s: median latency %.1f ms (p5 %.1f, p95 %.1f, n=%zu)\n",
                orbit::to_string(orbit_class).c_str(), s.p50, s.p5, s.p95, s.count);
  }
  return 0;
}
