// Full identification walkthrough: runs each stage of the paper's
// Figure-1 pipeline separately and narrates what every step keeps and
// drops — the "teaching" version of what run_pipeline() does in one call.
#include <cstdio>
#include <set>

#include "mlab/campaign.hpp"
#include "snoid/pipeline.hpp"
#include "stats/kde.hpp"
#include "synth/asdb.hpp"
#include "synth/world.hpp"

int main() {
  using namespace satnet;

  std::printf("== SNO identification, stage by stage ==\n\n");

  // Stage 0: the dataset.
  const synth::World world;
  mlab::CampaignConfig cfg;
  cfg.volume_scale = 0.001;
  cfg.min_tests_per_sno = 30;
  const auto dataset = mlab::run_campaign(world, cfg);
  std::printf("[0] M-Lab campaign: %zu NDT speed tests\n\n", dataset.size());

  // Stage 1: ASdb's satellite category.
  const auto asdb = synth::asdb_satellite_category();
  std::printf("[1] ASdb 'Satellite Communication' category: %zu ASNs\n", asdb.size());
  std::printf("    (note: Starlink and Viasat are missing — ASdb's gap)\n");

  // Stage 1b: HE BGP search for well-known operators.
  std::set<bgp::Asn> candidates;
  for (const auto& row : asdb) candidates.insert(row.asn);
  std::size_t added = 0;
  for (const char* name : {"starlink", "viasat", "oneweb", "ses", "hughes"}) {
    for (const auto asn : synth::he_bgp_search(name)) {
      if (candidates.insert(asn).second) ++added;
    }
  }
  std::printf("[1b] HE BGP name search adds %zu ASNs (total %zu)\n\n", added,
              candidates.size());

  // Stage 2: manual curation via websites.
  std::size_t kept = 0, dropped = 0;
  for (const auto asn : candidates) {
    const auto info = synth::ipinfo_lookup(asn);
    if (info && info->kind == synth::EntityKind::sno) {
      ++kept;
    } else {
      ++dropped;
    }
  }
  std::printf("[2] website curation: %zu SNO ASNs kept, %zu look-alikes dropped\n\n",
              kept, dropped);

  // Stage 3: KDE validation — show the famous outlier.
  const auto by_asn = dataset.by_asn();
  for (const bgp::Asn asn : {bgp::Asn{14593}, bgp::Asn{27277}}) {
    const auto it = by_asn.find(asn);
    if (it == by_asn.end()) continue;
    const auto lat = dataset.field(it->second, &mlab::NdtRecord::latency_p5_ms);
    const auto peaks = stats::Kde(lat).peaks();
    std::printf("[3] AS%u latency KDE: main peak %.0f ms over %zu tests -> %s\n", asn,
                peaks.empty() ? 0.0 : peaks.front().location, lat.size(),
                asn == 14593 ? "compatible with LEO service"
                             : "terrestrial: this is SpaceX's corporate network");
  }

  // Stages 3b-4: the full pipeline.
  const auto result = snoid::run_pipeline(dataset);
  std::printf("\n[3b-4] strict prefix filter + relaxation:\n%s",
              snoid::describe(result).c_str());
  return 0;
}
