// Full identification walkthrough: runs each stage of the paper's
// Figure-1 pipeline separately and narrates what every step keeps and
// drops — the "teaching" version of what run_pipeline() does in one call.
//
// The narration itself lives in io::identify_snos_report so the golden
// regression suite (tests/golden_test.cpp) can pin it byte-for-byte.
#include <cstdio>

#include "io/golden.hpp"

int main() {
  std::fputs(satnet::io::identify_snos_report(/*threads=*/0).c_str(), stdout);
  return 0;
}
