#!/usr/bin/env bash
# Local verification matching CI, mode by mode. Modes compose: pass any
# subset and they run in gate order (lint first, like CI). Run from the
# repo root:
#
#   scripts/verify.sh                  # everything: lint + tier-1 + golden + matrix + tsan + asan
#   scripts/verify.sh --lint           # satlint + format check (CI job 1)
#   scripts/verify.sh --tier1          # build + full ctest (CI job 2)
#   scripts/verify.sh --golden         # golden snapshots + determinism/fault repeat (CI job 3)
#   scripts/verify.sh --matrix         # seeded scenario sweep + invariant catalog (CI nightly)
#   scripts/verify.sh --matrix-worlds N  # override the matrix world budget (implies --matrix)
#   scripts/verify.sh --tsan           # ThreadSanitizer pass (CI job 4)
#   scripts/verify.sh --asan           # ASan+UBSan full ctest (CI job 5)
#   scripts/verify.sh --lint --tier1   # compose any subset
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_lint=0 run_tier1=0 run_golden=0 run_matrix=0 run_tsan=0 run_asan=0
matrix_worlds=25
if [[ $# -eq 0 ]]; then
  run_lint=1 run_tier1=1 run_golden=1 run_matrix=1 run_tsan=1 run_asan=1
fi
while [[ $# -gt 0 ]]; do
  case "$1" in
    --lint)   run_lint=1 ;;
    --tier1)  run_tier1=1 ;;
    --golden) run_golden=1 ;;
    --matrix) run_matrix=1 ;;
    --matrix-worlds)
      shift
      if [[ $# -eq 0 || ! "${1}" =~ ^[0-9]+$ || "${1}" -eq 0 ]]; then
        echo "verify.sh: --matrix-worlds expects a positive integer, got '${1:-}'" >&2
        echo "usage: scripts/verify.sh [--matrix] [--matrix-worlds N] [--lint] [--tier1] [--golden] [--tsan] [--asan]" >&2
        exit 2
      fi
      matrix_worlds="$1" run_matrix=1 ;;
    --tsan)   run_tsan=1 ;;
    --asan)   run_asan=1 ;;
    --all)    run_lint=1 run_tier1=1 run_golden=1 run_matrix=1 run_tsan=1 run_asan=1 ;;
    -h|--help)
      grep '^#' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      echo "verify.sh: unknown mode '$1' (try --lint, --tier1, --golden, --matrix, --tsan, --asan)" >&2
      exit 2
      ;;
  esac
  shift
done

# Every run states its randomized-sweep budgets up front, so a CI log or
# a bug report always records how much world/seed coverage was bought.
echo "verify: budgets — matrix worlds=${matrix_worlds} (--matrix-worlds N)," \
     "property seeds=${SATNET_PROPERTY_SEEDS:-32} (SATNET_PROPERTY_SEEDS)," \
     "tier-1 matrix sweep worlds=${SATNET_MATRIX_WORLDS:-6} (SATNET_MATRIX_WORLDS)"

if [[ "$run_lint" == 1 ]]; then
  echo "== lint: satlint determinism/concurrency gate + format check =="
  cmake -B build -S .
  cmake --build build -j "${jobs}" --target satlint
  # Full-tree sweep with every cross-TU gate CI runs: the suppression
  # baseline (drift in either direction fails — see
  # tools/satlint/suppressions.baseline), the layering DOT export
  # (compared against the committed docs/layering.dot so the diagram
  # can't go stale), and the content-keyed graph cache (kept under
  # build/ so repeat runs skip the whole-program rebuild).
  ./build/tools/satlint/satlint --root . \
    --json build/satlint-report.json \
    --baseline tools/satlint/suppressions.baseline \
    --graph build/layering.dot \
    --graph-cache build/satlint-graph.cache
  if ! cmp -s build/layering.dot docs/layering.dot; then
    echo "lint: docs/layering.dot is stale — regenerate with" >&2
    echo "      ./build/tools/satlint/satlint --root . --graph docs/layering.dot" >&2
    exit 1
  fi
  scripts/format.sh --check
fi

if [[ "$run_tier1" == 1 ]]; then
  echo "== tier-1: build + ctest =="
  cmake -B build -S .
  cmake --build build -j "${jobs}"
  ctest --test-dir build --output-on-failure -j "${jobs}"
fi

if [[ "$run_golden" == 1 ]]; then
  echo "== golden: snapshot suite + determinism/fault repeat at varying threads =="
  cmake -B build -S .
  cmake --build build -j "${jobs}" --target golden_test determinism_test fault_test \
    bench_ablation_access_cache bench_timeline bench_propagate benchreport
  # The flake gate: the determinism-sensitive suites run 3x, golden_test
  # additionally asserting one more thread count each round. Snapshots
  # regenerate only via `golden_test --update-golden`, never here. The
  # first round builds the epoch timeline cold and persists it; later
  # rounds warm-start from the file — same snapshots either way, so the
  # repeat gate doubles as the persistence equivalence oracle.
  rm -f build/golden-timeline.bin
  timeline_flag="--timeline-out"
  for threads in 1 2 8; do
    echo "-- repeat round: golden_test --threads ${threads} (${timeline_flag}) --"
    ./build/tests/golden_test --threads "${threads}" \
      "${timeline_flag}" build/golden-timeline.bin
    timeline_flag="--timeline-in"
    ./build/tests/fault_test
    ./build/tests/determinism_test
  done
  # Ablation rounds: the whole snapshot suite must be byte-identical with
  # the access-interval index disabled (the cache's equivalence oracle)
  # and with the epoch timeline disabled (the replay equivalence oracle).
  echo "-- ablation round: golden_test --no-access-cache --"
  ./build/tests/golden_test --no-access-cache
  echo "-- ablation round: golden_test --no-timeline --"
  ./build/tests/golden_test --no-timeline
  # Recorder round: the snapshot suite must be byte-identical with the
  # flight recorder enabled (observation-only oracle); the drained event
  # JSONL lands in build/ for inspection / CI artifact upload.
  echo "-- recorder round: golden_test --recorder-out --"
  ./build/tests/golden_test --recorder-out build/golden-recorder.jsonl
  test -s build/golden-recorder.jsonl
  # Cache speedup + byte-identity report (exits 1 on divergence); the
  # JSON lands in the repo root for CI artifact upload / trend tracking.
  echo "-- ablation bench: bench_ablation_access_cache --"
  ./build/bench/bench_ablation_access_cache --benchmark_filter='measure_handoffs'
  test -s BENCH_access_cache.json
  # Timeline cold/warm/no-timeline A/B (exits 1 on divergence) + the
  # warm-replay speedup record.
  echo "-- timeline bench: bench_timeline --"
  ./build/bench/bench_timeline --benchmark_filter='sample_replay'
  test -s BENCH_timeline.json
  # Batched propagation vs per-sat scalar (exits 1 if the batch kernel
  # loses its hoisting) + the walker/sgp4 cost comparison record.
  echo "-- propagation bench: bench_propagate --"
  ./build/bench/bench_propagate --benchmark_filter='walker_batch_epoch'
  test -s BENCH_propagate.json
  # Perf-regression ledger: append this run to the committed history,
  # then gate on the machine-independent ratio metrics (speedups, hit
  # ratios) against the committed baseline. Absolute times are checked
  # only by CI's advisory step — they vary too much across machines for
  # a local hard gate.
  echo "-- bench ledger: benchreport append + ratio gate --"
  ./build/tools/benchreport/benchreport --append \
    BENCH_access_cache.json BENCH_timeline.json BENCH_propagate.json \
    --ledger bench/ledger --run-id "verify-$(git rev-parse --short HEAD 2>/dev/null || echo local)"
  ./build/tools/benchreport/benchreport --check \
    BENCH_access_cache.json BENCH_timeline.json BENCH_propagate.json \
    --ledger bench/ledger --ratios-only --tolerance 0.5
fi

if [[ "$run_matrix" == 1 ]]; then
  echo "== matrix: ${matrix_worlds}-world seeded sweep + invariant catalog + bench ledger =="
  cmake -B build -S .
  cmake --build build -j "${jobs}" --target matrix_test bench_matrix benchreport satnetctl
  # The sweep: every generated world must pass the whole invariant
  # catalog (thread/ablation identity, flow conservation, monotone
  # degradation, finite metrics). A failure shrinks to a minimal spec
  # and lands under build/matrix_failures/ — reproduce any seed with
  #   ./build/examples/satnetctl world --seed N --check
  rm -rf build/matrix_failures
  if ! SATNET_MATRIX_WORLDS="${matrix_worlds}" \
       SATNET_MATRIX_FAILURE_DIR=build/matrix_failures \
       ./build/tests/matrix_test; then
    echo "matrix: sweep failed — minimal failing specs in build/matrix_failures/:" >&2
    ls build/matrix_failures >&2 2>/dev/null || true
    exit 1
  fi
  # Throughput + ledger: the bench re-runs the catalog on a disjoint
  # seed stride and gates on invariants_ok — a generated world failing
  # its own catalog is a regression regardless of speed.
  echo "-- matrix bench: bench_matrix (${matrix_worlds} worlds) --"
  SATNET_BENCH_MATRIX_WORLDS="${matrix_worlds}" \
    ./build/bench/bench_matrix --benchmark_filter='generate_scenario'
  test -s BENCH_matrix.json
  ./build/tools/benchreport/benchreport --append BENCH_matrix.json \
    --ledger bench/ledger --run-id "verify-$(git rev-parse --short HEAD 2>/dev/null || echo local)"
  ./build/tools/benchreport/benchreport --check BENCH_matrix.json \
    --ledger bench/ledger --ratios-only --tolerance 0.5
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "== TSan: determinism + runtime + obs + fault tests under ThreadSanitizer =="
  cmake -B build-tsan -S . -DSATNET_TSAN=ON
  cmake --build build-tsan -j "${jobs}" --target determinism_test runtime_test obs_test fault_test
  ./build-tsan/tests/runtime_test
  ./build-tsan/tests/obs_test
  ./build-tsan/tests/fault_test
  ./build-tsan/tests/determinism_test
fi

if [[ "$run_asan" == 1 ]]; then
  echo "== ASan+UBSan: full ctest under AddressSanitizer + UBSan =="
  cmake -B build-asan -S . -DSATNET_ASAN_UBSAN=ON
  cmake --build build-asan -j "${jobs}"
  ctest --test-dir build-asan --output-on-failure -j "${jobs}"
fi

echo "verify: OK"
