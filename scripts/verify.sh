#!/usr/bin/env bash
# Tier-1 verification plus the ThreadSanitizer pass over the sharded
# campaign runtime. Run from the repo root:
#
#   scripts/verify.sh            # full: tier-1 + TSan determinism + obs
#   scripts/verify.sh --tier1    # tier-1 only
#   scripts/verify.sh --tsan     # TSan pass only (CI's second job)
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [[ "${1:-}" != "--tsan" ]]; then
  echo "== tier-1: build + ctest =="
  cmake -B build -S .
  cmake --build build -j "${jobs}"
  ctest --test-dir build --output-on-failure -j "${jobs}"

  if [[ "${1:-}" == "--tier1" ]]; then
    exit 0
  fi
fi

echo "== TSan: determinism + runtime + obs tests under ThreadSanitizer =="
cmake -B build-tsan -S . -DSATNET_TSAN=ON
cmake --build build-tsan -j "${jobs}" --target determinism_test runtime_test obs_test
./build-tsan/tests/runtime_test
./build-tsan/tests/obs_test
./build-tsan/tests/determinism_test

echo "verify: OK"
