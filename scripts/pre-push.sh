#!/usr/bin/env bash
# Fast pre-push lint: satlint over only the files that changed since the
# base ref, while the cross-TU rules (layering, nondet-taint,
# worker-reach) still see the whole program — `--changed` focuses the
# *reporting*, not the graph. Wire it up as a git hook with
#
#   ln -sf ../../scripts/pre-push.sh .git/hooks/pre-push
#
# or run it by hand before pushing:
#
#   scripts/pre-push.sh [base-ref]      # default base: origin/main, then main
#
# The suppression baseline is a full-tree property, so it is NOT gated
# here — that stays in `scripts/verify.sh --lint` and CI.
set -euo pipefail
cd "$(dirname "$0")/.."

base="${1:-}"
if [[ -z "$base" ]]; then
  if git rev-parse --verify --quiet origin/main >/dev/null; then
    base="origin/main"
  else
    base="main"
  fi
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}" --target satlint >/dev/null

echo "pre-push: satlint --changed ${base}"
./build/tools/satlint/satlint --root . --changed "$base" \
  --graph-cache build/satlint-graph.cache
echo "pre-push: OK"
