#!/usr/bin/env bash
# clang-format wrapper over the repo's C++ sources.
#
#   scripts/format.sh               # format changed files in place
#   scripts/format.sh --check       # fail if a changed file needs formatting
#   scripts/format.sh --all         # cover every tracked source file
#   scripts/format.sh --base REF    # diff against REF (default: merge-base
#                                   # with origin/main, else HEAD~1)
#
# "Changed files" are taken from git so the lint CI job only judges the
# files a PR touches, not historic formatting drift. When clang-format is
# not installed the script warns and exits 0 so local verify.sh runs
# don't require it (CI installs it).
set -euo pipefail
cd "$(dirname "$0")/.."

check=0 all=0 base=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --check) check=1 ;;
    --all) all=1 ;;
    --base)
      base="$2"
      shift
      ;;
    -h|--help)
      grep '^#' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      echo "format.sh: unknown argument '$1'" >&2
      exit 2
      ;;
  esac
  shift
done

clang_format="$(command -v clang-format || true)"
if [[ -z "$clang_format" ]]; then
  echo "format.sh: clang-format not installed; skipping (CI runs it)" >&2
  exit 0
fi

source_filter() { grep -E '\.(cpp|hpp|h)$' | grep -v '^tests/satlint_fixtures/' || true; }

if [[ "$all" == 1 ]]; then
  files="$(git ls-files 'src/**' 'bench/**' 'examples/**' 'tests/**' 'tools/**' | source_filter)"
else
  if [[ -z "$base" ]]; then
    base="$(git merge-base HEAD origin/main 2>/dev/null || git rev-parse HEAD~1 2>/dev/null || true)"
  fi
  if [[ -n "$base" ]]; then
    files="$( (git diff --name-only "$base" -- ; git diff --name-only --cached ; git ls-files --others --exclude-standard) | sort -u | source_filter)"
  else
    files="$(git ls-files 'src/**' 'bench/**' 'examples/**' 'tests/**' 'tools/**' | source_filter)"
  fi
fi

if [[ -z "$files" ]]; then
  echo "format.sh: no source files to check"
  exit 0
fi

status=0
while IFS= read -r f; do
  [[ -f "$f" ]] || continue
  if [[ "$check" == 1 ]]; then
    if ! "$clang_format" --dry-run --Werror "$f" > /dev/null 2>&1; then
      echo "needs formatting: $f"
      status=1
    fi
  else
    "$clang_format" -i "$f"
  fi
done <<< "$files"

if [[ "$check" == 1 && "$status" != 0 ]]; then
  echo "format.sh: run scripts/format.sh to fix" >&2
fi
exit "$status"
