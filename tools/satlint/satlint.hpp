// satlint: the repo's determinism & concurrency contract, as a linter.
//
// The whole value of this reproduction over the paper's real-hardware
// study is known ground truth, which only holds while every campaign is
// bit-deterministic at any thread count. PR 1/PR 2 defend that contract
// with runtime tests; satlint turns it into a static gate that fails the
// build the moment a nondeterminism source, an unordered-iteration
// export, a raw Rng in sharded code, a mutable static in worker code, or
// an unannotated parallel float accumulation lands in the tree.
//
// It is deliberately a pragmatic lexer/line-scanner, not a compiler
// plugin: comments and string literals are blanked, brace nesting is
// classified (namespace / type / function), per-file declarations are
// tracked well enough to know which identifiers are unordered containers
// or floating-point accumulators, and everything else is regular
// expressions over the sanitized code (the lexer layer lives in
// lex.{hpp,cpp}).
//
// Since v2 the per-file rules sit on top of a whole-program layer
// (graph.{hpp,cpp}): a project include graph plus a pragmatic
// per-function call graph, consumed by three cross-TU rules — module
// layering, nondeterminism taint, and worker reachability — and by the
// stale-allow meta-rule that keeps the suppression budget honest.
//
// False positives are handled with an inline escape hatch that
// *requires* a one-line justification:
//
//   // satlint:allow(<rule-id>): <why this use is safe>
//
// on the offending line or on its own line immediately above (a run of
// comment-only lines covers the first code line after it, so allows for
// different rules can stack). For the float-accum rule the
// domain-specific spelling
//
//   // satlint: deterministic-merge: <why the order is fixed>
//
// is accepted as an equivalent suppression.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace satlint {

/// Rule identifiers, used in diagnostics, allow() annotations, and JSON.
///   D1 nondet-source : rand()/srand(), std::random_device, *_clock::now,
///                      time(nullptr)-style seeds, __DATE__/__TIME__.
///                      Clock reads are auto-allowed (recorded as
///                      suppressions) inside the telemetry boundary —
///                      src/obs and src/runtime own the monotonic clock
///                      (the flight recorder's wall_us field is the
///                      canonical pattern); everywhere else a raw
///                      *_clock::now needs an explicit allow.
///   D2 unordered-iter: iteration over std::unordered_{map,set} in report
///                      or export paths (io/, obs/, campaign results).
///   D3 raw-rng       : Rng constructed from a seed inside sharded code
///                      (runtime/, mlab/, ripe/, snoid/) instead of being
///                      derived with fork_stable.
///   D4 shared-state  : function-local static (non-const, non-atomic) in
///                      worker-executed code.
///   D5 float-accum   : += / -= on a double/float accumulator in a merge
///                      path without a deterministic-merge annotation.
///   D6 adhoc-inject  : ad-hoc fault toggles (`inject_*` identifiers) in
///                      src/ modules outside src/fault; every injection
///                      point must query fault::Hook so plans stay
///                      replayable and hits are counted.
///   D7 persist-nondet: persistence hazards in src/io — directory
///                      iteration feeding results (order is filesystem-
///                      dependent), branching on mmap availability
///                      (the heap fallback must be byte-identical), and
///                      binary writes in files that never mention a
///                      format-version constant (k...Version), so stale
///                      artifacts would be misparsed instead of rejected,
///                      and wall-clock reads (a timestamp written into an
///                      artifact breaks byte-identical replays — stamps
///                      must be caller-provided).
/// Cross-TU rules (tree scans only — they need the whole program):
///   D8 layering      : an include edge outside the declared module DAG
///                      (graph.cpp kAllowedDeps), or any include cycle.
///   D9 nondet-taint  : a call in a src/ report/export-path file reaches,
///                      through the call graph, a function in another
///                      file whose body reads a nondeterminism source —
///                      the laundered-clock case D1 cannot see. An
///                      allow(nondet-taint) on the source line sanctions
///                      the root (telemetry-only values); on the call
///                      site it sanctions one flow.
///   D10 worker-reach : mutable function-local statics and raw Rng
///                      construction in any function reachable from a
///                      worker entry (a lambda handed to
///                      ThreadPool::submit / ShardedCampaign /
///                      std::thread), wherever the code lives — the
///                      true-reachability upgrade of D4/D3's
///                      directory-based classification.
/// Plus the meta-rules:
///   bad-allow        : a satlint:allow() with no justification text.
///   stale-allow      : a satlint:allow() that suppresses nothing
///                      (tree scans only); dead justifications hide
///                      drift and inflate the suppression budget.
struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// All rules satlint knows, in diagnostic-id order.
const std::vector<RuleInfo>& rules();

struct Diagnostic {
  std::string file;     ///< path as scanned (virtual path in tests)
  int line = 0;         ///< 1-based
  std::string rule;     ///< rule id, e.g. "nondet-source"
  std::string message;  ///< human-readable explanation

  bool operator==(const Diagnostic&) const = default;
};

struct LintOptions {
  /// Path substrings exempt from every rule (reported as whitelisted,
  /// never scanned). Defaults cover the linter's own fixture corpus.
  std::vector<std::string> whitelist = {"tests/satlint_fixtures/"};

  /// Run the whole-program rules (D8/D9/D10 + stale-allow) in tree
  /// scans. Per-file scans (lint_source / lint_files) never run them.
  bool cross_tu = true;

  /// When non-empty, findings are only *reported* for these paths
  /// (relative, as scanned) — the graph is still built from the whole
  /// tree so cross-TU rules see the full program. This is the
  /// `--changed` pre-push mode.
  std::vector<std::string> focus;

  /// Path of the serialized graph cache ("" = no caching). The cache is
  /// keyed on a hash over every scanned (path, content) pair; any edit
  /// anywhere is a rebuild, so it can never serve stale analysis.
  std::string graph_cache;

  /// When non-empty, the module-level include graph is written here as
  /// DOT after a tree scan.
  std::string dot_path;
};

/// Result of scanning one file.
struct FileReport {
  std::string path;
  std::vector<Diagnostic> violations;  ///< failures (exit nonzero)
  std::vector<Diagnostic> suppressed;  ///< matched by a justified allow
};

/// Result of scanning a tree (or an explicit file list).
struct TreeReport {
  std::vector<FileReport> files;      ///< only files with findings
  std::size_t files_scanned = 0;      ///< files actually rule-checked
  std::size_t files_whitelisted = 0;  ///< files skipped via whitelist

  std::size_t violation_count() const;
  std::size_t suppressed_count() const;
  bool clean() const { return violation_count() == 0; }
};

/// Suppressions per rule id, every known rule present (0 when unused).
/// This is the quantity the committed baseline gates.
std::map<std::string, std::size_t> suppressions_by_rule(const TreeReport& report);

/// How a path is classified decides which rules apply to it. Exposed for
/// tests and for the --explain CLI mode.
struct FileClass {
  std::string module;     ///< "runtime", "io", "bench", "tests", ...
  bool report_path = false;  ///< D2 applies
  bool sharded = false;      ///< D3 applies
  bool worker = false;       ///< D4 applies
  bool merge_path = false;   ///< D5 applies
  bool injection_scope = false;  ///< D6 applies (src/ modules except fault)
  bool persist_scope = false;    ///< D7 applies (src/io persistence code)
  bool clock_boundary = false;   ///< D1 clock reads auto-allowed (obs/runtime)
};

FileClass classify(std::string_view path);

/// Lints one file's content under a (possibly virtual) path. The path
/// only drives classification; no filesystem access happens here.
/// Per-file rules only — cross-TU rules need lint_tree.
FileReport lint_source(std::string_view path, std::string_view content,
                       const LintOptions& options = {});

/// Lints every .cpp/.hpp/.h under root/<subdir> for each subdir, in
/// sorted path order (satlint's own output is deterministic). Missing
/// subdirs are skipped. Paths in the report are relative to `root`.
/// Runs the whole-program pass unless options.cross_tu is false.
TreeReport lint_tree(const std::string& root, const std::vector<std::string>& subdirs,
                     const LintOptions& options = {});

/// Lints an explicit list of files (paths reported as given).
/// Per-file rules only.
TreeReport lint_files(const std::vector<std::string>& paths,
                      const LintOptions& options = {});

/// JSON report (schema v2: adds a per-rule "suppression_count" object),
/// stable field order, one violation object per finding.
std::string to_json(const TreeReport& report);

/// Parses a report produced by to_json (round-trip for tooling that
/// consumes the JSON artifact). Returns nullopt on malformed input.
std::optional<TreeReport> from_json(std::string_view json);

// ---------------------------------------------------------------------------
// Suppression baseline: the committed per-rule suppression counts
// (tools/satlint/suppressions.baseline). CI regenerates the counts from
// the tree scan and fails on any drift, so adding an allow() — or
// leaving one stale — requires touching the baseline in the same PR.
// ---------------------------------------------------------------------------

/// Renders the report's per-rule suppression counts in baseline format.
std::string format_baseline(const TreeReport& report);

/// Parses a baseline file. Lines are "<rule> <count>"; '#' comments and
/// blank lines are ignored. Unknown rules or malformed lines fail.
std::optional<std::map<std::string, std::size_t>> parse_baseline(std::string_view text);

/// Compares the report against a baseline. Returns one human-readable
/// error per drifted rule (empty = gate passes). Both directions fail:
/// an increase means an unreviewed new allow(), a decrease means the
/// baseline must be ratcheted down.
std::vector<std::string> check_baseline(
    const TreeReport& report, const std::map<std::string, std::size_t>& baseline);

}  // namespace satlint
