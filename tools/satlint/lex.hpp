// satlint's lexer layer: the pragmatic source model every rule is built
// on. One philosophy, shared by the per-file rules and the whole-program
// graph pass:
//
//   * comments and string literals are blanked out of the code stream
//     (raw strings included, with their u8/u/U/L encoding prefixes — a
//     `)"` inside a raw literal must never desynchronize the scanner);
//   * every '{' is classified (namespace / type / function / block /
//     initializer) so rules know which lines live inside function
//     bodies;
//   * function definitions (including named and anonymous lambdas) and
//     call sites are extracted per file, well enough to stitch a
//     whole-program call graph — not a compiler front end, a linter.
//
// Allow annotations are parsed here too, because they live in the
// comment stream the sanitizer preserves.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace satlint::lex {

/// Per-line view of a source file with literals/comments blanked from
/// the code stream and comment text preserved in a parallel stream.
struct Sanitized {
  std::vector<std::string> code;     ///< literals/comments blanked
  std::vector<std::string> comment;  ///< comment text only
};

Sanitized sanitize(std::string_view src);

std::string_view rstrip(std::string_view s);

/// What kind of scope a '{' opens.
enum class Scope { ns, type, fn, block, init };

/// Classifies the '{' that follows `ctx` (the trailing significant
/// code). `in_function` is whether the brace appears inside a function
/// body already.
Scope classify_brace(std::string_view ctx, bool in_function);

/// in_function[i] == true when line i *starts* inside a function body.
std::vector<bool> function_lines(const std::vector<std::string>& code);

/// One parsed suppression annotation.
struct Allow {
  std::string rule;           ///< rule id, or the deterministic-merge alias
  std::string justification;  ///< required, one line
};

/// Parses every allow annotation on one comment line. Multiple
/// annotations may share a line; each justification runs until the next
/// annotation (or the end of the comment).
std::vector<Allow> parse_allows(const std::string& comment);

/// One allow annotation with its source position; `line` is where the
/// annotation is written (1-based), which is also where a stale-allow
/// diagnostic anchors.
struct AllowSite {
  Allow allow;
  int line = 0;
};

/// Per-file allow coverage: `line_sites[i]` lists the sites (indexes
/// into `sites`) that may suppress a diagnostic on line i (0-based).
/// A trailing annotation covers its own line; a run of comment-only
/// lines covers each of those lines and the first code line after the
/// run, so allows for different rules can stack above one statement.
struct AllowMap {
  std::vector<AllowSite> sites;
  std::vector<std::vector<int>> line_sites;
};

AllowMap build_allow_map(const Sanitized& s);

// ---------------------------------------------------------------------------
// Function & call-site extraction (the call-graph front end)
// ---------------------------------------------------------------------------

/// One function definition found in a file. Lambdas are their own
/// definitions, nested inside their enclosing function via `parent`;
/// a lambda bound to a name (`auto f = [..](..){..}`) inherits it.
struct FunctionDef {
  std::string name;       ///< simple name ("submit", "<lambda>")
  std::string qualified;  ///< best-effort qualification ("ThreadPool::submit")
  int line_begin = 0;     ///< line of the opening '{' (1-based)
  int line_end = 0;       ///< line of the closing '}' (1-based)
  bool is_lambda = false;
  bool worker_entry = false;  ///< lambda handed to ThreadPool::submit /
                              ///< ShardedCampaign / std::thread
  int parent = -1;            ///< enclosing function index, -1 at file scope
};

/// One call site. `qualifier` is whatever path preceded the name
/// ("obs::FlightRecorder" for obs::FlightRecorder::global(), "pool" for
/// pool.submit(...)); `member` marks . / -> calls.
struct CallSite {
  int caller = -1;  ///< index into defs; -1 = file scope (initializers)
  std::string name;
  std::string qualifier;
  bool member = false;
  int line = 0;  ///< 1-based
};

struct FileSymbols {
  std::vector<FunctionDef> defs;
  std::vector<CallSite> calls;
};

/// Extracts function definitions and call sites from sanitized code.
FileSymbols extract_symbols(const Sanitized& s);

}  // namespace satlint::lex
