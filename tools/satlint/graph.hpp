// satlint's whole-program layer: the project include graph and a
// pragmatic per-function call graph, consumed by the cross-TU rules.
//
//   * D8 layering    — the module DAG is declared here (kAllowedDeps);
//                      an include edge outside the matrix, or any
//                      include cycle, is a violation. `to_dot` exports
//                      the module graph for docs/.
//   * D9 nondet-taint— functions whose bodies read a nondeterminism
//                      source (clock, random_device, rand, time seeds,
//                      mmap branches) taint their callers transitively;
//                      a report/export-path function calling a tainted
//                      function defined in another file is the
//                      laundered-clock case the per-file rules miss.
//   * D10 worker-reach— true reachability from ThreadPool::submit /
//                      ShardedCampaign shard bodies, so worker-only
//                      rules apply wherever worker-reachable code
//                      actually lives, not just in worker-classified
//                      directories.
//
// Same philosophy as the per-file rules: lexer-level, over-approximate,
// deterministic. Calls link by simple name (filtered by an explicit
// qualifier when one is written and by a stoplist of ubiquitous STL
// names); that over-approximation is what a linter wants — a missed
// edge hides a bug, a spurious edge costs one justified allow.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lex.hpp"

namespace satlint::graph {

/// One file handed to the graph builder. `raw` is the original text
/// (include paths live inside string literals, which the sanitizer
/// blanks); `code` is the sanitized view the symbol extractor consumes.
struct FileInput {
  std::string path;              ///< virtual path, '/'-separated
  std::string_view raw;
  const lex::Sanitized* code = nullptr;
};

/// A nondeterminism source occurrence feeding the taint pass.
struct SourceMark {
  int line = 0;          ///< 1-based
  std::string what;      ///< "steady_clock::now", "mmap", ...
  bool allowed = false;  ///< satlint:allow(nondet-taint) sanctioned the root
  std::string justification;
};

struct FileNode {
  std::string path;
  std::string module;  ///< "src:orbit", "tools:satlint", "bench", "" (other)
  std::vector<int> include_targets;  ///< resolved file indexes
  std::vector<int> include_lines;    ///< parallel, 1-based
  lex::FileSymbols symbols;
  std::vector<SourceMark> sources;
};

/// Whole-program model. Function ids index `fns`; edges are resolved
/// call links (caller fn id -> callee fn ids). Call sites with
/// caller == -1 (file scope) get edges under `scope_calls` per file.
struct Project {
  struct Fn {
    int file = 0;
    int def = 0;
  };
  /// One call site whose callee resolved to a project function —
  /// kept with its source position so rule findings can anchor there.
  struct ResolvedCall {
    int file = 0;
    int line = 0;     ///< 1-based
    int caller = -1;  ///< fn id, -1 = file scope
    int callee = 0;   ///< fn id
  };

  std::vector<FileNode> files;           ///< sorted by path
  std::vector<Fn> fns;
  std::vector<std::vector<int>> edges;       ///< fn id -> callee fn ids
  std::vector<std::vector<int>> redges;      ///< fn id -> caller fn ids
  std::vector<ResolvedCall> calls;           ///< sorted (file, line, callee)

  const lex::FunctionDef& def(int fn) const {
    return files[static_cast<std::size_t>(fns[static_cast<std::size_t>(fn)].file)]
        .symbols.defs[static_cast<std::size_t>(fns[static_cast<std::size_t>(fn)].def)];
  }
  int file_of(int fn) const { return fns[static_cast<std::size_t>(fn)].file; }
  int find_file(std::string_view path) const;
};

/// Builds the project model: include resolution, symbol extraction,
/// source marks, call linking. Input order does not matter; files are
/// sorted by path internally so every downstream analysis (and the
/// serialized cache) is deterministic.
Project build(std::vector<FileInput> inputs);

/// The declared module DAG: maps a module id ("src:orbit") to the
/// modules it may include, not counting itself. Exposed for tests and
/// for the --explain documentation path.
const std::map<std::string, std::vector<std::string>>& allowed_deps();

/// One D8 finding: an include edge outside the matrix or an include
/// cycle, anchored to an include line.
struct LayerFinding {
  int file = 0;
  int line = 0;
  std::string message;
};
std::vector<LayerFinding> check_layering(const Project& project);

/// One D9 finding: a call site in a report/export-path file whose
/// callee (in another file) transitively reaches a nondeterminism
/// source. `root_suppressions` reports taint roots that were sanctioned
/// with satlint:allow(nondet-taint) — the caller records them as used
/// suppressions.
struct TaintFinding {
  int file = 0;
  int line = 0;
  std::string message;
};
struct TaintResult {
  std::vector<TaintFinding> findings;
  std::vector<TaintFinding> root_suppressions;
};
/// `report_path[i]` flags files whose functions are export/report
/// surface (the per-file D2 classification, shared by satlint.cpp).
TaintResult check_taint(const Project& project, const std::vector<bool>& report_path);

/// Fn ids reachable from worker entry points (lambdas handed to
/// ThreadPool::submit / ShardedCampaign / std::thread), including the
/// entry lambdas themselves. Sorted ascending.
std::vector<int> worker_reachable(const Project& project);

/// Module-level DOT export of the include graph for docs/DESIGN.md.
std::string to_dot(const Project& project);

/// Extraction dump for one file (functions + call sites) as stable
/// JSON — pinned as a golden for the call-graph extractor.
std::string extraction_json(const Project& project, std::string_view path);

// ---------------------------------------------------------------------------
// Graph cache: rebuilding the whole-program model is pure lexing, but
// CI runs it on every lint job — a content-keyed cache keeps the lint
// wall time flat as the tree grows. The key is a hash over every
// (path, content) pair; any edit anywhere invalidates it.
// ---------------------------------------------------------------------------

std::uint64_t content_hash(const std::vector<std::pair<std::string, std::string_view>>&
                               path_and_raw);

std::string serialize(const Project& project, std::uint64_t hash);

/// Returns the cached project only if `expect_hash` matches the stored
/// key and the payload parses cleanly; any mismatch or corruption is a
/// miss, never an error.
std::optional<Project> deserialize(std::string_view text, std::uint64_t expect_hash);

}  // namespace satlint::graph
