// satlint CLI: scans src/, tools/, bench/, examples/, tests/ and exits
// nonzero on any determinism/concurrency contract violation.
//
//   satlint --root <repo>                 lint the whole tree
//   satlint --root <repo> --json r.json   also write the JSON report
//   satlint --root <repo> --graph g.dot   export the module include DAG
//   satlint --root <repo> --graph-cache f reuse the call/include graph
//                                         when no file changed
//   satlint --root <repo> --changed REF   report only on files changed
//                                         vs merge-base(REF, HEAD) — the
//                                         graph still covers the tree
//   satlint --root <repo> --baseline f    gate per-rule suppression
//                                         counts against a committed
//                                         baseline (--write-baseline
//                                         regenerates it)
//   satlint file.cpp ...                  lint explicit files (per-file
//                                         rules only)
//   satlint --list-rules                  print every rule + summary
//
// Diagnostics are GCC-style (file:line: error[rule]: message) so editors
// and CI annotate them natively.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "satlint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--json FILE] [--graph FILE] "
               "[--graph-cache FILE] [--changed BASE_REF] [--baseline FILE] "
               "[--write-baseline] [--quiet] [--list-rules] [files...]\n",
               argv0);
  return 2;
}

std::string run_command(const std::string& cmd) {
  std::string out;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) out.append(buf, n);
  pclose(pipe);
  return out;
}

std::string strip(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r' || s.back() == ' ')) {
    s.pop_back();
  }
  return s;
}

bool lintable_name(const std::string& p) {
  const auto ends = [&](const char* suffix) {
    const std::size_t n = std::string(suffix).size();
    return p.size() >= n && p.compare(p.size() - n, n, suffix) == 0;
  };
  return ends(".cpp") || ends(".hpp") || ends(".h");
}

/// Files changed in the working tree vs merge-base(base_ref, HEAD),
/// plus untracked files — the pre-push surface.
std::vector<std::string> changed_files(const std::string& root,
                                       const std::string& base_ref) {
  const std::string git = "git -C '" + root + "' ";
  std::string base = strip(run_command(git + "merge-base '" + base_ref +
                                       "' HEAD 2>/dev/null"));
  if (base.empty()) base = base_ref;  // detached fetch; diff the ref itself
  const std::string diff =
      run_command(git + "diff --name-only '" + base + "' 2>/dev/null") +
      run_command(git + "ls-files --others --exclude-standard 2>/dev/null");
  std::vector<std::string> out;
  std::istringstream in(diff);
  std::string line;
  while (std::getline(in, line)) {
    line = strip(line);
    if (!line.empty() && lintable_name(line)) out.push_back(line);
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  std::string baseline_path;
  std::string changed_ref;
  bool write_baseline = false;
  bool quiet = false;
  std::vector<std::string> files;
  satlint::LintOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--graph" && i + 1 < argc) {
      options.dot_path = argv[++i];
    } else if (arg == "--graph-cache" && i + 1 < argc) {
      options.graph_cache = argv[++i];
    } else if (arg == "--changed" && i + 1 < argc) {
      changed_ref = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const satlint::RuleInfo& r : satlint::rules()) {
        std::printf("%-16s %s\n", std::string(r.id).c_str(),
                    std::string(r.summary).c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (write_baseline && baseline_path.empty()) {
    std::fprintf(stderr, "satlint: --write-baseline needs --baseline FILE\n");
    return 2;
  }

  if (!changed_ref.empty()) {
    options.focus = changed_files(root, changed_ref);
    if (options.focus.empty()) {
      if (!quiet) {
        std::printf("satlint: no C++ files changed vs %s\n", changed_ref.c_str());
      }
      return 0;
    }
  }

  const std::vector<std::string> subdirs = {"src", "tools", "bench", "examples",
                                            "tests"};
  const satlint::TreeReport report =
      files.empty() ? satlint::lint_tree(root, subdirs, options)
                    : satlint::lint_files(files, options);

  for (const satlint::FileReport& f : report.files) {
    for (const satlint::Diagnostic& d : f.violations) {
      std::fprintf(stderr, "%s:%d: error[%s]: %s\n", d.file.c_str(), d.line,
                   d.rule.c_str(), d.message.c_str());
    }
  }

  if (!json_path.empty()) {
    const std::string json = satlint::to_json(report);
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "satlint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
  }

  // The baseline gate only makes sense for a full-tree scan: a --changed
  // or explicit-file run sees a subset of the suppressions.
  bool baseline_ok = true;
  if (!baseline_path.empty() && files.empty() && changed_ref.empty()) {
    if (write_baseline) {
      std::ofstream out(baseline_path, std::ios::binary);
      out << satlint::format_baseline(report);
      if (!quiet) std::printf("satlint: wrote %s\n", baseline_path.c_str());
    } else {
      const auto baseline = satlint::parse_baseline(read_file(baseline_path));
      if (!baseline) {
        std::fprintf(stderr, "satlint: cannot parse baseline %s\n",
                     baseline_path.c_str());
        baseline_ok = false;
      } else {
        for (const std::string& err : satlint::check_baseline(report, *baseline)) {
          std::fprintf(stderr, "satlint: suppression baseline: %s\n", err.c_str());
          baseline_ok = false;
        }
      }
    }
  }

  if (!quiet) {
    std::printf(
        "satlint: %zu file(s) scanned, %zu whitelisted, %zu violation(s), "
        "%zu suppression(s)\n",
        report.files_scanned, report.files_whitelisted, report.violation_count(),
        report.suppressed_count());
  }
  return report.clean() && baseline_ok ? 0 : 1;
}
