// satlint CLI: scans src/, bench/, examples/, tests/ and exits nonzero
// on any determinism/concurrency contract violation.
//
//   satlint --root <repo>              lint the whole tree
//   satlint --root <repo> --json r.json  also write the JSON report
//   satlint file.cpp ...               lint explicit files
//   satlint --list-rules               print every rule with its summary
//
// Diagnostics are GCC-style (file:line: error[rule]: message) so editors
// and CI annotate them natively.
#include <cstdio>
#include <string>
#include <vector>

#include "satlint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--json FILE] [--quiet] [--list-rules] "
               "[files...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  bool quiet = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      for (const satlint::RuleInfo& r : satlint::rules()) {
        std::printf("%-16s %s\n", std::string(r.id).c_str(),
                    std::string(r.summary).c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  const satlint::TreeReport report =
      files.empty()
          ? satlint::lint_tree(root, {"src", "bench", "examples", "tests"})
          : satlint::lint_files(files);

  for (const satlint::FileReport& f : report.files) {
    for (const satlint::Diagnostic& d : f.violations) {
      std::fprintf(stderr, "%s:%d: error[%s]: %s\n", d.file.c_str(), d.line,
                   d.rule.c_str(), d.message.c_str());
    }
  }

  if (!json_path.empty()) {
    const std::string json = satlint::to_json(report);
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "satlint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
  }

  if (!quiet) {
    std::printf(
        "satlint: %zu file(s) scanned, %zu whitelisted, %zu violation(s), "
        "%zu suppression(s)\n",
        report.files_scanned, report.files_whitelisted, report.violation_count(),
        report.suppressed_count());
  }
  return report.clean() ? 0 : 1;
}
