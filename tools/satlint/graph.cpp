#include "graph.hpp"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <sstream>

namespace satlint::graph {

namespace {

// ---------------------------------------------------------------------------
// Modules & the declared layering matrix
// ---------------------------------------------------------------------------

std::string module_of(std::string_view path) {
  const auto seg = [&](std::size_t k) -> std::string_view {
    std::size_t start = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t slash = path.find('/', start);
      if (slash == std::string_view::npos) return {};
      start = slash + 1;
    }
    const std::size_t end = path.find('/', start);
    if (end == std::string_view::npos) return {};  // a file, not a dir segment
    return path.substr(start, end - start);
  };
  const std::string_view top = seg(0);
  if (top == "src" || top == "tools") {
    const std::string_view sub = seg(1);
    if (sub.empty()) return std::string(top);
    return std::string(top) + ":" + std::string(sub);
  }
  if (top == "bench" || top == "examples" || top == "tests") {
    return std::string(top);
  }
  return "";
}

// The module DAG. A src module may include itself plus exactly the
// modules listed; the foundation modules (stats, geo, sim) and the
// telemetry leaf (obs) include nothing, so the numeric core stays pure
// and obs stays the layer everything may report into without ever
// reaching back up. tools/* modules are standalone (own directory
// only); bench/examples/tests may include anything.
const std::map<std::string, std::vector<std::string>> kAllowedDeps = {
    {"src:stats", {}},
    {"src:geo", {}},
    {"src:sim", {}},
    {"src:obs", {}},
    {"src:bgp", {"src:stats"}},
    {"src:dns", {"src:geo", "src:stats"}},
    {"src:net", {"src:geo", "src:stats"}},
    {"src:fault", {"src:geo", "src:stats", "src:obs"}},
    {"src:runtime", {"src:fault", "src:obs"}},
    // orbit is a domain module: it may not reach into the runtime layer
    // (the timeline build's ThreadPool use carries a justified allow —
    // the one sanctioned inversion, see DESIGN.md §14).
    {"src:orbit", {"src:geo", "src:stats", "src:fault", "src:obs"}},
    {"src:weather", {"src:geo", "src:fault", "src:orbit"}},
    {"src:transport",
     {"src:stats", "src:fault", "src:obs", "src:orbit", "src:weather"}},
    {"src:http", {"src:stats", "src:transport"}},
    {"src:video", {"src:stats", "src:transport"}},
    // synth emits fault::FaultPlans (the scenario generator's fault
    // axis); fault is a lower layer (geo/stats/obs only), so no cycle.
    {"src:synth",
     {"src:geo", "src:stats", "src:net", "src:bgp", "src:orbit",
      "src:transport", "src:weather", "src:fault"}},
    // matrix is the invariant-harness layer over generated worlds: it
    // drives synth worlds through the campaign runtime, so it sits with
    // the campaign layers (above synth/runtime, below io).
    {"src:matrix",
     {"src:geo", "src:stats", "src:obs", "src:fault", "src:orbit",
      "src:weather", "src:transport", "src:runtime", "src:synth"}},
    {"src:mlab",
     {"src:stats", "src:sim", "src:obs", "src:orbit", "src:runtime",
      "src:synth", "src:transport"}},
    {"src:ripe",
     {"src:geo", "src:stats", "src:sim", "src:obs", "src:net", "src:dns",
      "src:orbit", "src:runtime"}},
    {"src:prolific",
     {"src:geo", "src:stats", "src:dns", "src:http", "src:synth",
      "src:transport", "src:video"}},
    {"src:snoid",
     {"src:stats", "src:obs", "src:bgp", "src:orbit", "src:runtime",
      "src:mlab", "src:ripe", "src:synth", "src:transport"}},
    // io is the presentation/persistence top: it renders campaign
    // results into artifacts, so it sees the campaign layers — and
    // nothing may include io back (enforced by io's absence from every
    // other allow list).
    {"src:io",
     {"src:stats", "src:obs", "src:orbit", "src:transport", "src:weather",
      "src:synth", "src:mlab", "src:ripe", "src:prolific", "src:snoid"}},
};

bool edge_allowed(const std::string& from, const std::string& to) {
  if (from.empty() || to.empty()) return true;   // unclassified paths
  if (from == to) return true;                   // intra-module
  if (from == "bench" || from == "examples" || from == "tests") return true;
  if (from.rfind("tools:", 0) == 0) return false;  // tools are standalone
  const auto it = kAllowedDeps.find(from);
  if (it == kAllowedDeps.end()) return false;  // unknown src module
  return std::find(it->second.begin(), it->second.end(), to) != it->second.end();
}

// ---------------------------------------------------------------------------
// Include extraction & path resolution
// ---------------------------------------------------------------------------

std::string normalize_path(std::string_view p) {
  std::vector<std::string> segs;
  std::size_t start = 0;
  while (start <= p.size()) {
    const std::size_t slash = p.find('/', start);
    const std::string_view seg =
        p.substr(start, (slash == std::string_view::npos ? p.size() : slash) - start);
    if (seg == "..") {
      if (!segs.empty()) segs.pop_back();
    } else if (!seg.empty() && seg != ".") {
      segs.emplace_back(seg);
    }
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  std::string out;
  for (const std::string& s : segs) {
    if (!out.empty()) out += '/';
    out += s;
  }
  return out;
}

std::string dirname_of(std::string_view p) {
  const std::size_t slash = p.rfind('/');
  return slash == std::string_view::npos ? std::string() : std::string(p.substr(0, slash));
}

// ---------------------------------------------------------------------------
// Taint sources
// ---------------------------------------------------------------------------

struct SourcePattern {
  const std::regex re;
  const char* what;
};

const std::vector<SourcePattern>& source_patterns() {
  static const std::vector<SourcePattern> kPatterns = [] {
    std::vector<SourcePattern> v;
    v.push_back({std::regex(R"(\b(\w*_clock::now)\b)"), ""});
    v.push_back({std::regex(R"(\brandom_device\b)"), "std::random_device"});
    v.push_back({std::regex(R"(\b(rand|srand)\s*\()"), "rand()"});
    v.push_back({std::regex(R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))"),
                 "time(nullptr)"});
    v.push_back({std::regex(R"((^|[^\w])mmap\s*\()"), "mmap availability"});
    return v;
  }();
  return kPatterns;
}

// Names too generic to link call edges through: linking `v.size()` to
// some project function named `size` would wire the graph into noise.
bool stoplisted(const std::string& name) {
  static const std::set<std::string> kStop = {
      "size",       "empty",     "begin",      "end",       "cbegin",
      "cend",       "rbegin",    "rend",       "push_back", "emplace_back",
      "pop_back",   "pop_front", "push_front", "clear",     "reserve",
      "resize",     "insert",    "erase",      "find",      "count",
      "at",         "front",     "back",       "data",      "c_str",
      "str",        "substr",    "append",     "length",    "good",
      "fail",       "eof",       "open",       "close",     "read",
      "write",      "get",       "put",        "set",       "load",
      "store",      "exchange",  "lock",       "unlock",    "try_lock",
      "wait",       "wait_for",  "notify_one", "notify_all","join",
      "joinable",   "detach",    "reset",      "release",   "swap",
      "first",      "second",    "value",      "has_value", "value_or",
      "emplace",    "push",      "pop",        "top",       "tie",
      "min",        "max",       "abs",        "test",      "flip",
      "contains",   "merge",     "extract",    "assign",    "compare",
      "starts_with","ends_with", "rfind",      "find_first_of",
      "find_last_of","tellg",    "tellp",      "seekg",     "seekp",
      "flush",      "rdbuf",     "width",      "fill",      "precision"};
  return kStop.count(name) != 0;
}

/// Shared post-load step: builds the fn table, links call sites into
/// edges, and resolves per-call-site callees. Deterministic: files are
/// pre-sorted, defs/calls keep extraction order.
void link(Project& p) {
  p.fns.clear();
  std::map<std::string, std::vector<int>> by_name;
  for (std::size_t f = 0; f < p.files.size(); ++f) {
    for (std::size_t d = 0; d < p.files[f].symbols.defs.size(); ++d) {
      const int id = static_cast<int>(p.fns.size());
      p.fns.push_back({static_cast<int>(f), static_cast<int>(d)});
      by_name[p.files[f].symbols.defs[d].name].push_back(id);
    }
  }
  // Map (file, def) -> fn id for caller resolution.
  std::map<std::pair<int, int>, int> fn_id;
  for (std::size_t i = 0; i < p.fns.size(); ++i) {
    fn_id[{p.fns[i].file, p.fns[i].def}] = static_cast<int>(i);
  }

  p.edges.assign(p.fns.size(), {});
  p.redges.assign(p.fns.size(), {});
  p.calls.clear();
  std::set<std::tuple<int, int, int>> edge_seen;  // caller, callee, line
  for (std::size_t f = 0; f < p.files.size(); ++f) {
    for (const lex::CallSite& cs : p.files[f].symbols.calls) {
      if (stoplisted(cs.name)) continue;
      const auto it = by_name.find(cs.name);
      if (it == by_name.end()) continue;
      const int caller =
          cs.caller < 0 ? -1 : fn_id[{static_cast<int>(f), cs.caller}];
      for (const int callee : it->second) {
        const lex::FunctionDef& def = p.def(callee);
        if (!cs.member && !cs.qualifier.empty()) {
          // An explicit qualifier must agree with the callee's path —
          // only its last component, so `obs::ShardScope::enter` still
          // links a def recorded as `ShardScope::enter`.
          std::string q = cs.qualifier;
          const std::size_t sep = q.rfind("::");
          if (sep != std::string::npos) q = q.substr(sep + 2);
          if (def.qualified.find(q + "::" + cs.name) == std::string::npos) continue;
        }
        if (callee == caller) continue;
        p.calls.push_back({static_cast<int>(f), cs.line, caller, callee});
        if (caller >= 0 &&
            edge_seen.insert({caller, callee, 0}).second) {
          p.edges[static_cast<std::size_t>(caller)].push_back(callee);
          p.redges[static_cast<std::size_t>(callee)].push_back(caller);
        }
      }
    }
  }
  // A lambda runs in the dynamic context of whoever holds it; for both
  // taint (a tainted lambda taints its definer) and worker reachability
  // (a reached function's nested lambdas run on the worker) the
  // conservative edge is definer -> lambda.
  for (std::size_t i = 0; i < p.fns.size(); ++i) {
    const lex::FunctionDef& d = p.def(static_cast<int>(i));
    if (d.parent < 0) continue;
    const auto it = fn_id.find({p.fns[i].file, d.parent});
    if (it == fn_id.end()) continue;
    const int parent = it->second;
    if (edge_seen.insert({parent, static_cast<int>(i), 0}).second) {
      p.edges[static_cast<std::size_t>(parent)].push_back(static_cast<int>(i));
      p.redges[i].push_back(parent);
    }
  }

  std::sort(p.calls.begin(), p.calls.end(),
            [](const Project::ResolvedCall& a, const Project::ResolvedCall& b) {
              return std::tie(a.file, a.line, a.callee) <
                     std::tie(b.file, b.line, b.callee);
            });
}

std::string fn_label(const Project& p, int fn) {
  const lex::FunctionDef& d = p.def(fn);
  return d.qualified.empty() ? d.name : d.qualified;
}

}  // namespace

int Project::find_file(std::string_view path) const {
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].path == path) return static_cast<int>(i);
  }
  return -1;
}

const std::map<std::string, std::vector<std::string>>& allowed_deps() {
  return kAllowedDeps;
}

Project build(std::vector<FileInput> inputs) {
  std::sort(inputs.begin(), inputs.end(),
            [](const FileInput& a, const FileInput& b) { return a.path < b.path; });

  Project p;
  std::map<std::string, int> index;
  for (const FileInput& in : inputs) {
    FileNode node;
    node.path = in.path;
    node.module = module_of(in.path);
    index[node.path] = static_cast<int>(p.files.size());
    p.files.push_back(std::move(node));
  }

  static const std::regex kIncludeDirective(R"(^\s*#\s*include\s*")");
  static const std::regex kIncludePath(R"rx(#\s*include\s*"([^"]+)")rx");

  for (std::size_t f = 0; f < inputs.size(); ++f) {
    const FileInput& in = inputs[f];
    FileNode& node = p.files[f];

    // Includes: the directive survives sanitizing but the path (a string
    // literal) is blanked, so confirm on sanitized code and read the
    // path from the raw line.
    std::size_t line_start = 0;
    for (std::size_t li = 0; li < in.code->code.size(); ++li) {
      const std::string& cl = in.code->code[li];
      std::size_t line_end = in.raw.find('\n', line_start);
      if (line_end == std::string_view::npos) line_end = in.raw.size();
      if (std::regex_search(cl, kIncludeDirective)) {
        const std::string raw_line(in.raw.substr(line_start, line_end - line_start));
        std::smatch m;
        if (std::regex_search(raw_line, m, kIncludePath)) {
          const std::string inc = m[1].str();
          int target = -1;
          for (const std::string& candidate :
               {normalize_path(dirname_of(in.path) + "/" + inc),
                normalize_path(inc), normalize_path("src/" + inc)}) {
            const auto it = index.find(candidate);
            if (it != index.end()) {
              target = it->second;
              break;
            }
          }
          if (target >= 0) {
            node.include_targets.push_back(target);
            node.include_lines.push_back(static_cast<int>(li + 1));
          }
        }
      }
      line_start = line_end + 1;
    }

    // Symbols & taint sources.
    node.symbols = lex::extract_symbols(*in.code);
    const lex::AllowMap allows = lex::build_allow_map(*in.code);
    for (std::size_t li = 0; li < in.code->code.size(); ++li) {
      const std::string& cl = in.code->code[li];
      if (lex::rstrip(cl).empty()) continue;
      for (const SourcePattern& sp : source_patterns()) {
        std::smatch m;
        if (!std::regex_search(cl, m, sp.re)) continue;
        SourceMark mark;
        mark.line = static_cast<int>(li + 1);
        mark.what = *sp.what ? sp.what : m[1].str();
        for (const int site : allows.line_sites[li]) {
          const lex::Allow& a = allows.sites[static_cast<std::size_t>(site)].allow;
          if (a.rule == "nondet-taint" && !a.justification.empty()) {
            mark.allowed = true;
            mark.justification = a.justification;
          }
        }
        node.sources.push_back(std::move(mark));
      }
    }
  }

  link(p);
  return p;
}

// ---------------------------------------------------------------------------
// D8: layering + include cycles
// ---------------------------------------------------------------------------

std::vector<LayerFinding> check_layering(const Project& p) {
  std::vector<LayerFinding> out;

  for (std::size_t f = 0; f < p.files.size(); ++f) {
    const FileNode& node = p.files[f];
    for (std::size_t k = 0; k < node.include_targets.size(); ++k) {
      const FileNode& target =
          p.files[static_cast<std::size_t>(node.include_targets[k])];
      if (edge_allowed(node.module, target.module)) continue;
      std::string why;
      if (node.module.rfind("tools:", 0) == 0) {
        why = "tools are standalone: a tool may include only its own "
              "directory and link everything else as a library";
      } else if (kAllowedDeps.find(node.module) == kAllowedDeps.end()) {
        why = "module '" + node.module +
              "' is not in the layering matrix; declare its allowed "
              "dependencies in tools/satlint/graph.cpp (kAllowedDeps) "
              "before it grows includes";
      } else {
        why = "the module DAG does not allow '" + node.module +
              "' -> '" + target.module +
              "'; move the shared code down a layer or justify the "
              "inversion with satlint:allow(layering)";
      }
      out.push_back({static_cast<int>(f), node.include_lines[k],
                     "illegal include of " + target.path + ": " + why});
    }
  }

  // Include cycles (any module): iterative Tarjan SCC over files.
  const int n = static_cast<int>(p.files.size());
  std::vector<int> idx(static_cast<std::size_t>(n), -1),
      low(static_cast<std::size_t>(n), 0), comp(static_cast<std::size_t>(n), -1);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int counter = 0;
  struct Frame {
    int v;
    std::size_t child;
  };
  for (int s = 0; s < n; ++s) {
    if (idx[static_cast<std::size_t>(s)] != -1) continue;
    std::vector<Frame> frames{{s, 0}};
    idx[static_cast<std::size_t>(s)] = low[static_cast<std::size_t>(s)] = counter++;
    stack.push_back(s);
    on_stack[static_cast<std::size_t>(s)] = true;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const auto& targets =
          p.files[static_cast<std::size_t>(fr.v)].include_targets;
      if (fr.child < targets.size()) {
        const int w = targets[fr.child++];
        if (idx[static_cast<std::size_t>(w)] == -1) {
          idx[static_cast<std::size_t>(w)] = low[static_cast<std::size_t>(w)] =
              counter++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          frames.push_back({w, 0});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(fr.v)] = std::min(
              low[static_cast<std::size_t>(fr.v)], idx[static_cast<std::size_t>(w)]);
        }
      } else {
        if (low[static_cast<std::size_t>(fr.v)] == idx[static_cast<std::size_t>(fr.v)]) {
          std::vector<int> scc;
          for (;;) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            comp[static_cast<std::size_t>(w)] = static_cast<int>(sccs.size());
            scc.push_back(w);
            if (w == fr.v) break;
          }
          sccs.push_back(std::move(scc));
        }
        const int v = fr.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[static_cast<std::size_t>(frames.back().v)] =
              std::min(low[static_cast<std::size_t>(frames.back().v)],
                       low[static_cast<std::size_t>(v)]);
        }
      }
    }
  }
  for (const std::vector<int>& scc : sccs) {
    bool cyclic = scc.size() > 1;
    if (scc.size() == 1) {
      const auto& t = p.files[static_cast<std::size_t>(scc[0])].include_targets;
      cyclic = std::find(t.begin(), t.end(), scc[0]) != t.end();
    }
    if (!cyclic) continue;
    // Anchor the finding at the lexicographically-smallest member, on
    // its first include edge that stays inside the cycle.
    std::vector<int> sorted = scc;
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      return p.files[static_cast<std::size_t>(a)].path <
             p.files[static_cast<std::size_t>(b)].path;
    });
    const int anchor = sorted.front();
    const FileNode& node = p.files[static_cast<std::size_t>(anchor)];
    int line = 1;
    for (std::size_t k = 0; k < node.include_targets.size(); ++k) {
      if (comp[static_cast<std::size_t>(node.include_targets[k])] ==
          comp[static_cast<std::size_t>(anchor)]) {
        line = node.include_lines[k];
        break;
      }
    }
    std::string members;
    for (const int f : sorted) {
      if (!members.empty()) members += " -> ";
      members += p.files[static_cast<std::size_t>(f)].path;
    }
    out.push_back({anchor, line,
                   "include cycle (" + members +
                       "); break the cycle — cyclic headers make layering "
                       "meaningless and build order fragile"});
  }

  std::sort(out.begin(), out.end(), [&](const LayerFinding& a, const LayerFinding& b) {
    return std::tie(p.files[static_cast<std::size_t>(a.file)].path, a.line,
                    a.message) <
           std::tie(p.files[static_cast<std::size_t>(b.file)].path, b.line,
                    b.message);
  });
  return out;
}

// ---------------------------------------------------------------------------
// D9: nondet taint
// ---------------------------------------------------------------------------

TaintResult check_taint(const Project& p, const std::vector<bool>& report_path) {
  TaintResult result;

  // Roots: functions whose body covers an unsanctioned source line.
  // taint_via[fn] = -1 for a root, else the callee the taint came from;
  // root_of[fn] points at (file, source index) for chain rendering.
  const int nfn = static_cast<int>(p.fns.size());
  std::vector<int> taint_via(static_cast<std::size_t>(nfn), -2);  // -2 = clean
  std::vector<std::pair<int, int>> root_of(static_cast<std::size_t>(nfn), {-1, -1});
  std::vector<int> queue;

  for (std::size_t f = 0; f < p.files.size(); ++f) {
    const FileNode& node = p.files[f];
    for (std::size_t s = 0; s < node.sources.size(); ++s) {
      const SourceMark& mark = node.sources[s];
      if (mark.allowed) {
        result.root_suppressions.push_back(
            {static_cast<int>(f), mark.line,
             "nondeterminism source (" + mark.what +
                 ") sanctioned as a taint root [allowed: " + mark.justification +
                 "]"});
        continue;
      }
      // The innermost function whose body covers the line.
      int best = -1;
      for (std::size_t d = 0; d < node.symbols.defs.size(); ++d) {
        const lex::FunctionDef& def = node.symbols.defs[d];
        if (mark.line < def.line_begin || mark.line > def.line_end) continue;
        if (best < 0 ||
            def.line_begin >= node.symbols.defs[static_cast<std::size_t>(best)].line_begin) {
          best = static_cast<int>(d);
        }
      }
      if (best < 0) continue;
      int fn = -1;
      for (std::size_t i = 0; i < p.fns.size(); ++i) {
        if (p.fns[i].file == static_cast<int>(f) && p.fns[i].def == best) {
          fn = static_cast<int>(i);
          break;
        }
      }
      if (fn < 0 || taint_via[static_cast<std::size_t>(fn)] != -2) continue;
      taint_via[static_cast<std::size_t>(fn)] = -1;
      root_of[static_cast<std::size_t>(fn)] = {static_cast<int>(f),
                                               static_cast<int>(s)};
      queue.push_back(fn);
    }
  }

  // Propagate: a caller of a tainted function is tainted.
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int fn = queue[head];
    for (const int caller : p.redges[static_cast<std::size_t>(fn)]) {
      if (taint_via[static_cast<std::size_t>(caller)] != -2) continue;
      taint_via[static_cast<std::size_t>(caller)] = fn;
      root_of[static_cast<std::size_t>(caller)] =
          root_of[static_cast<std::size_t>(fn)];
      queue.push_back(caller);
    }
  }

  // Fire on call sites in report-path files whose callee is tainted and
  // defined in another file.
  std::set<std::pair<int, int>> seen;  // (file, line)
  for (const Project::ResolvedCall& rc : p.calls) {
    if (!report_path[static_cast<std::size_t>(rc.file)]) continue;
    if (taint_via[static_cast<std::size_t>(rc.callee)] == -2) continue;
    if (p.file_of(rc.callee) == rc.file) continue;  // per-file rules own it
    if (!seen.insert({rc.file, rc.line}).second) continue;

    // Render the chain callee -> ... -> source.
    std::string chain = fn_label(p, rc.callee);
    int hop = rc.callee;
    int hops = 0;
    while (taint_via[static_cast<std::size_t>(hop)] >= 0 && hops < 6) {
      hop = taint_via[static_cast<std::size_t>(hop)];
      chain += " -> " + fn_label(p, hop);
      ++hops;
    }
    const auto [rf, rs] = root_of[static_cast<std::size_t>(rc.callee)];
    std::string src_at = "?";
    std::string what = "a nondeterminism source";
    if (rf >= 0) {
      const SourceMark& mark =
          p.files[static_cast<std::size_t>(rf)].sources[static_cast<std::size_t>(rs)];
      what = mark.what;
      src_at = p.files[static_cast<std::size_t>(rf)].path + ":" +
               std::to_string(mark.line);
    }
    result.findings.push_back(
        {rc.file, rc.line,
         "call into '" + fn_label(p, rc.callee) + "' reaches " + what + " (" +
             src_at + "; chain: " + chain +
             "); a report/export path must stay a pure function of the "
             "seed — route the value out of the artifact or sanction the "
             "flow with satlint:allow(nondet-taint)"});
  }
  return result;
}

// ---------------------------------------------------------------------------
// D10: worker reachability
// ---------------------------------------------------------------------------

std::vector<int> worker_reachable(const Project& p) {
  std::vector<bool> reached(p.fns.size(), false);
  std::vector<int> queue;
  for (std::size_t i = 0; i < p.fns.size(); ++i) {
    if (p.def(static_cast<int>(i)).worker_entry) {
      reached[i] = true;
      queue.push_back(static_cast<int>(i));
    }
  }
  // Everything a reached function calls (and every lambda it defines —
  // link() adds definer -> lambda edges) runs on the worker.
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (const int callee : p.edges[static_cast<std::size_t>(queue[head])]) {
      if (!reached[static_cast<std::size_t>(callee)]) {
        reached[static_cast<std::size_t>(callee)] = true;
        queue.push_back(callee);
      }
    }
  }
  std::vector<int> out;
  for (std::size_t i = 0; i < p.fns.size(); ++i) {
    if (reached[i]) out.push_back(static_cast<int>(i));
  }
  return out;
}

// ---------------------------------------------------------------------------
// DOT export
// ---------------------------------------------------------------------------

std::string to_dot(const Project& p) {
  // Module-level edges, src/tools only (bench/tests/examples may include
  // anything — charting them hides the architecture instead of showing
  // it).
  std::set<std::pair<std::string, std::string>> edges;
  std::set<std::string> nodes;
  for (const FileNode& node : p.files) {
    if (node.module.rfind("src:", 0) != 0 && node.module.rfind("tools:", 0) != 0) {
      continue;
    }
    nodes.insert(node.module);
    for (const int target : node.include_targets) {
      const std::string& to = p.files[static_cast<std::size_t>(target)].module;
      if (to.empty() || to == node.module) continue;
      if (to.rfind("src:", 0) != 0 && to.rfind("tools:", 0) != 0) continue;
      nodes.insert(to);
      edges.insert({node.module, to});
    }
  }
  const auto id = [](const std::string& m) {
    std::string out = m;
    for (char& c : out) {
      if (c == ':') c = '_';
    }
    return out;
  };
  const auto label = [](const std::string& m) {
    const std::size_t colon = m.find(':');
    return colon == std::string::npos ? m : m.substr(colon + 1);
  };
  std::ostringstream out;
  out << "// satnetperf module DAG — generated by `satlint --graph`.\n"
      << "digraph satnet_layering {\n"
      << "  rankdir=BT;\n"
      << "  node [shape=box, fontname=\"Helvetica\", fontsize=11];\n"
      << "  edge [color=\"#666666\", arrowsize=0.7];\n";
  out << "  subgraph cluster_src {\n    label=\"src/\";\n    color=\"#bbbbbb\";\n";
  for (const std::string& n : nodes) {
    if (n.rfind("src:", 0) == 0) {
      out << "    " << id(n) << " [label=\"" << label(n) << "\"];\n";
    }
  }
  out << "  }\n";
  out << "  subgraph cluster_tools {\n    label=\"tools/\";\n    color=\"#bbbbbb\";\n";
  for (const std::string& n : nodes) {
    if (n.rfind("tools:", 0) == 0) {
      out << "    " << id(n) << " [label=\"" << label(n) << "\"];\n";
    }
  }
  out << "  }\n";
  for (const auto& [from, to] : edges) {
    out << "  " << id(from) << " -> " << id(to);
    if (!edge_allowed(from, to)) {
      out << " [color=\"#cc3333\", style=dashed, label=\"allow\", fontsize=9]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Extraction JSON (golden for the call-graph front end)
// ---------------------------------------------------------------------------

namespace {

std::string jesc(std::string_view s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string extraction_json(const Project& p, std::string_view path) {
  const int f = p.find_file(path);
  std::ostringstream out;
  out << "{\n  \"file\": \"" << jesc(path) << "\",\n  \"functions\": [";
  if (f >= 0) {
    const FileNode& node = p.files[static_cast<std::size_t>(f)];
    for (std::size_t d = 0; d < node.symbols.defs.size(); ++d) {
      const lex::FunctionDef& def = node.symbols.defs[d];
      out << (d == 0 ? "" : ",") << "\n    {\"name\":\"" << jesc(def.name)
          << "\",\"qualified\":\"" << jesc(def.qualified)
          << "\",\"line_begin\":" << def.line_begin
          << ",\"line_end\":" << def.line_end
          << ",\"lambda\":" << (def.is_lambda ? "true" : "false")
          << ",\"worker_entry\":" << (def.worker_entry ? "true" : "false")
          << ",\"parent\":" << def.parent << "}";
    }
    if (!node.symbols.defs.empty()) out << "\n  ";
  }
  out << "],\n  \"calls\": [";
  if (f >= 0) {
    const FileNode& node = p.files[static_cast<std::size_t>(f)];
    for (std::size_t c = 0; c < node.symbols.calls.size(); ++c) {
      const lex::CallSite& cs = node.symbols.calls[c];
      out << (c == 0 ? "" : ",") << "\n    {\"caller\":" << cs.caller
          << ",\"name\":\"" << jesc(cs.name) << "\",\"qualifier\":\""
          << jesc(cs.qualifier) << "\",\"member\":" << (cs.member ? "true" : "false")
          << ",\"line\":" << cs.line << "}";
    }
    if (!node.symbols.calls.empty()) out << "\n  ";
  }
  out << "]\n}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

std::uint64_t content_hash(
    const std::vector<std::pair<std::string, std::string_view>>& path_and_raw) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  const auto mix = [&](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  };
  for (const auto& [path, raw] : path_and_raw) {
    mix(path);
    h ^= 0xff;
    h *= 1099511628211ull;
    mix(raw);
    h ^= 0xfe;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

std::vector<std::string> split_fields(const std::string& line, std::size_t n) {
  // Splits on '|' into exactly n fields; the last field absorbs any
  // extra separators (justifications and messages may contain '|').
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const std::size_t bar = line.find('|', start);
    if (bar == std::string::npos) return {};
    out.push_back(line.substr(start, bar - start));
    start = bar + 1;
  }
  out.push_back(line.substr(start));
  return out;
}

}  // namespace

std::string serialize(const Project& p, std::uint64_t hash) {
  std::ostringstream out;
  out << "satlint-graph-cache 1\n";
  out << "hash " << std::hex << hash << std::dec << "\n";
  out << "files " << p.files.size() << "\n";
  for (const FileNode& node : p.files) {
    out << "f " << node.path << "|" << node.module << "|"
        << node.include_targets.size() << "|" << node.symbols.defs.size() << "|"
        << node.symbols.calls.size() << "|" << node.sources.size() << "\n";
    for (std::size_t k = 0; k < node.include_targets.size(); ++k) {
      out << "i " << node.include_targets[k] << "|" << node.include_lines[k]
          << "\n";
    }
    for (const lex::FunctionDef& d : node.symbols.defs) {
      out << "d " << d.name << "|" << d.qualified << "|" << d.line_begin << "|"
          << d.line_end << "|" << (d.is_lambda ? 1 : 0) << "|"
          << (d.worker_entry ? 1 : 0) << "|" << d.parent << "\n";
    }
    for (const lex::CallSite& c : node.symbols.calls) {
      out << "c " << c.caller << "|" << c.name << "|" << c.qualifier << "|"
          << (c.member ? 1 : 0) << "|" << c.line << "\n";
    }
    for (const SourceMark& s : node.sources) {
      out << "s " << s.line << "|" << s.what << "|" << (s.allowed ? 1 : 0)
          << "|" << s.justification << "\n";
    }
  }
  return out.str();
}

std::optional<Project> deserialize(std::string_view text, std::uint64_t expect_hash) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != "satlint-graph-cache 1") return std::nullopt;
  if (!std::getline(in, line) || line.rfind("hash ", 0) != 0) return std::nullopt;
  std::uint64_t stored = 0;
  {
    std::istringstream hs(line.substr(5));
    hs >> std::hex >> stored;
    if (hs.fail()) return std::nullopt;
  }
  if (stored != expect_hash) return std::nullopt;
  if (!std::getline(in, line) || line.rfind("files ", 0) != 0) return std::nullopt;
  std::size_t nfiles = 0;
  try {
    nfiles = static_cast<std::size_t>(std::stoul(line.substr(6)));
  } catch (...) {
    return std::nullopt;
  }

  Project p;
  p.files.reserve(nfiles);
  const auto to_int = [](const std::string& s, bool* ok) {
    try {
      *ok = true;
      return std::stoi(s);
    } catch (...) {
      *ok = false;
      return 0;
    }
  };
  for (std::size_t f = 0; f < nfiles; ++f) {
    if (!std::getline(in, line) || line.rfind("f ", 0) != 0) return std::nullopt;
    const auto head = split_fields(line.substr(2), 6);
    if (head.size() != 6) return std::nullopt;
    bool ok = true;
    FileNode node;
    node.path = head[0];
    node.module = head[1];
    const int ninc = to_int(head[2], &ok);
    if (!ok) return std::nullopt;
    const int ndef = to_int(head[3], &ok);
    if (!ok) return std::nullopt;
    const int ncall = to_int(head[4], &ok);
    if (!ok) return std::nullopt;
    const int nsrc = to_int(head[5], &ok);
    if (!ok) return std::nullopt;
    for (int k = 0; k < ninc; ++k) {
      if (!std::getline(in, line) || line.rfind("i ", 0) != 0) return std::nullopt;
      const auto fields = split_fields(line.substr(2), 2);
      if (fields.size() != 2) return std::nullopt;
      node.include_targets.push_back(to_int(fields[0], &ok));
      if (!ok) return std::nullopt;
      node.include_lines.push_back(to_int(fields[1], &ok));
      if (!ok) return std::nullopt;
    }
    for (int k = 0; k < ndef; ++k) {
      if (!std::getline(in, line) || line.rfind("d ", 0) != 0) return std::nullopt;
      const auto fields = split_fields(line.substr(2), 7);
      if (fields.size() != 7) return std::nullopt;
      lex::FunctionDef d;
      d.name = fields[0];
      d.qualified = fields[1];
      d.line_begin = to_int(fields[2], &ok);
      if (!ok) return std::nullopt;
      d.line_end = to_int(fields[3], &ok);
      if (!ok) return std::nullopt;
      d.is_lambda = fields[4] == "1";
      d.worker_entry = fields[5] == "1";
      d.parent = to_int(fields[6], &ok);
      if (!ok) return std::nullopt;
      node.symbols.defs.push_back(std::move(d));
    }
    for (int k = 0; k < ncall; ++k) {
      if (!std::getline(in, line) || line.rfind("c ", 0) != 0) return std::nullopt;
      const auto fields = split_fields(line.substr(2), 5);
      if (fields.size() != 5) return std::nullopt;
      lex::CallSite c;
      c.caller = to_int(fields[0], &ok);
      if (!ok) return std::nullopt;
      c.name = fields[1];
      c.qualifier = fields[2];
      c.member = fields[3] == "1";
      c.line = to_int(fields[4], &ok);
      if (!ok) return std::nullopt;
      node.symbols.calls.push_back(std::move(c));
    }
    for (int k = 0; k < nsrc; ++k) {
      if (!std::getline(in, line) || line.rfind("s ", 0) != 0) return std::nullopt;
      const auto fields = split_fields(line.substr(2), 4);
      if (fields.size() != 4) return std::nullopt;
      SourceMark s;
      s.line = to_int(fields[0], &ok);
      if (!ok) return std::nullopt;
      s.what = fields[1];
      s.allowed = fields[2] == "1";
      s.justification = fields[3];
      node.sources.push_back(std::move(s));
    }
    p.files.push_back(std::move(node));
  }
  // Validate include targets before linking.
  for (const FileNode& node : p.files) {
    for (const int t : node.include_targets) {
      if (t < 0 || t >= static_cast<int>(p.files.size())) return std::nullopt;
    }
  }
  link(p);
  return p;
}

}  // namespace satlint::graph
