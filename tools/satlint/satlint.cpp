#include "satlint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace satlint {

namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"nondet-source",
     "banned nondeterminism source (rand/srand, std::random_device, "
     "*_clock::now, time(nullptr) seeds, __DATE__/__TIME__); clock reads "
     "are auto-allowed inside the telemetry boundary (src/obs, "
     "src/runtime)"},
    {"unordered-iter",
     "iteration over std::unordered_{map,set} in a report/export path; "
     "bucket order is implementation-defined and leaks into output"},
    {"raw-rng",
     "Rng constructed from a seed inside sharded code; derive shard "
     "streams with Rng::fork_stable(stable key) instead"},
    {"shared-state",
     "function-local static (non-const, non-atomic) in worker-executed "
     "code; workers on different threads would share it"},
    {"float-accum",
     "+=/-= on a floating-point accumulator in a merge path without a "
     "deterministic-merge annotation; float addition is order-sensitive"},
    {"adhoc-inject",
     "ad-hoc fault toggle (inject_* identifier) in a src/ module; every "
     "injection point must go through fault::Hook so fault plans stay "
     "replayable and hits are counted"},
    {"persist-nondet",
     "persistence hazard in src/io: directory-iteration order, branching "
     "on mmap availability, a binary write in a file with no format-"
     "version stamp (k...Version constant), or a wall-clock read that "
     "could stamp nondeterministic bytes into an artifact"},
    {"bad-allow",
     "satlint:allow()/deterministic-merge annotation without a one-line "
     "justification"},
};

// ---------------------------------------------------------------------------
// Source sanitizer: blank comments and literals out of the code stream,
// keep the comment text in a parallel stream (for allow annotations).
// ---------------------------------------------------------------------------

struct Sanitized {
  std::vector<std::string> code;     ///< per line, literals/comments blanked
  std::vector<std::string> comment;  ///< per line, comment text only
};

Sanitized sanitize(std::string_view src) {
  enum class St { code, line_comment, block_comment, str, chr, raw_str };
  St st = St::code;
  std::string raw_delim;  // for raw strings: the ")delim" terminator
  std::string code_line, comment_line;
  Sanitized out;

  const auto flush = [&] {
    out.code.push_back(code_line);
    out.comment.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::line_comment) st = St::code;
      flush();
      continue;
    }
    switch (st) {
      case St::code:
        if (c == '/' && next == '/') {
          st = St::line_comment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::block_comment;
          code_line += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (code_line.empty() || (!std::isalnum(static_cast<unsigned char>(
                                              code_line.back())) &&
                                          code_line.back() != '_'))) {
          // Raw string literal: find the delimiter up to '('.
          std::size_t p = i + 2;
          std::string delim;
          while (p < src.size() && src[p] != '(') delim += src[p++];
          raw_delim = ")" + delim + "\"";
          st = St::raw_str;
          code_line += "\"\"";
          i = p;  // at '(' (or end)
        } else if (c == '"') {
          st = St::str;
          code_line += '"';
        } else if (c == '\'') {
          // Digit separator (1'000) is not a char literal.
          const bool sep = !code_line.empty() &&
                           std::isdigit(static_cast<unsigned char>(code_line.back())) &&
                           std::isalnum(static_cast<unsigned char>(next));
          if (sep) {
            code_line += ' ';
          } else {
            st = St::chr;
            code_line += '\'';
          }
        } else {
          code_line += c;
        }
        comment_line += ' ';
        break;
      case St::line_comment:
        comment_line += c;
        code_line += ' ';
        break;
      case St::block_comment:
        if (c == '*' && next == '/') {
          st = St::code;
          comment_line += ' ';
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case St::str:
        if (c == '\\') {
          code_line += "  ";
          if (next != '\0' && next != '\n') ++i;
        } else if (c == '"') {
          st = St::code;
          code_line += '"';
        } else {
          code_line += ' ';
        }
        comment_line += ' ';
        break;
      case St::chr:
        if (c == '\\') {
          code_line += "  ";
          if (next != '\0' && next != '\n') ++i;
        } else if (c == '\'') {
          st = St::code;
          code_line += '\'';
        } else {
          code_line += ' ';
        }
        comment_line += ' ';
        break;
      case St::raw_str:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          st = St::code;
          i += raw_delim.size() - 1;
        }
        code_line += ' ';
        comment_line += ' ';
        break;
    }
  }
  flush();
  return out;
}

// ---------------------------------------------------------------------------
// Scope tracking: classify each '{' so we know, per line, whether we are
// inside a function body (where D4's static-local rule applies).
// ---------------------------------------------------------------------------

enum class Scope { ns, type, fn, block, init };

std::string_view rstrip(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool ends_with_token(std::string_view s, std::string_view tok) {
  s = rstrip(s);
  if (s.size() < tok.size() || s.substr(s.size() - tok.size()) != tok) return false;
  if (s.size() == tok.size()) return true;
  const char before = s[s.size() - tok.size() - 1];
  return !(std::isalnum(static_cast<unsigned char>(before)) || before == '_');
}

/// Classifies the '{' that follows `ctx` (the trailing significant code).
Scope classify_brace(std::string_view ctx, bool in_function) {
  std::string t(rstrip(ctx));

  // Trailing return type / qualifiers between ')' and '{'.
  static const std::regex kQualifiers(
      R"((\)\s*)((const|noexcept|override|final|mutable)\b\s*)*(->\s*[\w:<>,\s&*]+)?$)");
  std::smatch m;
  if (std::regex_search(t, m, kQualifiers)) {
    t = t.substr(0, static_cast<std::size_t>(m.position(0)) + 1);
  }

  if (t.empty()) return in_function ? Scope::block : Scope::init;
  const char last = t.back();
  if (last == '=' || last == ',' || last == '(' || last == '{') return Scope::init;
  if (ends_with_token(t, "return")) return Scope::init;
  if (ends_with_token(t, "else") || ends_with_token(t, "do") ||
      ends_with_token(t, "try")) {
    return Scope::block;
  }
  static const std::regex kNamespace(R"(namespace(\s+[\w:]+)?$)");
  if (std::regex_search(t, kNamespace)) return Scope::ns;

  if (last == ')') {
    // Find the matching '(' and look at the token before it.
    int depth = 0;
    std::size_t p = t.size();
    while (p > 0) {
      --p;
      if (t[p] == ')') ++depth;
      if (t[p] == '(') {
        if (--depth == 0) break;
      }
    }
    std::string_view before = rstrip(std::string_view(t).substr(0, p));
    if (!before.empty() && before.back() == ']') return Scope::fn;  // lambda
    for (std::string_view kw : {"if", "for", "while", "switch", "catch"}) {
      if (ends_with_token(before, kw)) return Scope::block;
    }
    return Scope::fn;
  }

  // "class X : public Y", "struct Foo", "enum class E" — only look past
  // the last statement boundary so earlier code can't bleed in.
  const std::size_t bound = t.find_last_of(";}{");
  const std::string tail = bound == std::string::npos ? t : t.substr(bound + 1);
  static const std::regex kType(R"(\b(class|struct|union|enum)\b)");
  if (std::regex_search(tail, kType)) return Scope::type;

  return in_function ? Scope::block : Scope::init;
}

bool stack_in_function(const std::vector<Scope>& stack) {
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (*it == Scope::fn) return true;
    if (*it == Scope::ns || *it == Scope::type) return false;
  }
  return false;
}

/// in_function[i] == true when line i *starts* inside a function body.
std::vector<bool> function_lines(const std::vector<std::string>& code) {
  std::vector<bool> in_fn(code.size(), false);
  std::vector<Scope> stack;
  std::string recent;  // trailing significant code before the next '{'
  for (std::size_t li = 0; li < code.size(); ++li) {
    in_fn[li] = stack_in_function(stack);
    for (const char c : code[li]) {
      if (c == '{') {
        stack.push_back(classify_brace(recent, stack_in_function(stack)));
        recent.clear();
      } else if (c == '}') {
        if (!stack.empty()) stack.pop_back();
        recent.clear();
      } else if (c == ';') {
        recent.clear();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        if (!recent.empty() && recent.back() != ' ') recent += ' ';
      } else {
        recent += c;
      }
      if (recent.size() > 240) recent.erase(0, recent.size() - 240);
    }
    if (!recent.empty() && recent.back() != ' ') recent += ' ';
  }
  return in_fn;
}

// ---------------------------------------------------------------------------
// Declaration tracking (pragmatic, per file)
// ---------------------------------------------------------------------------

/// Names declared with an unordered container type anywhere in the file.
std::set<std::string> unordered_names(const std::vector<std::string>& code) {
  std::set<std::string> names;
  static const std::regex kDecl(R"(\bunordered_(map|set|multimap|multiset)\s*<)");
  for (const std::string& line : code) {
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kDecl);
         it != std::sregex_iterator(); ++it) {
      // Walk the template argument list to its closing '>'.
      std::size_t p = static_cast<std::size_t>(it->position(0)) + it->length(0);
      int depth = 1;
      while (p < line.size() && depth > 0) {
        if (line[p] == '<') ++depth;
        if (line[p] == '>') --depth;
        ++p;
      }
      static const std::regex kName(R"(^\s*&?\s*(\w+))");
      std::smatch nm;
      const std::string rest = line.substr(p);
      if (std::regex_search(rest, nm, kName)) names.insert(nm[1].str());
    }
  }
  return names;
}

/// Tracks double/float declarations with function-level scoping: names
/// declared at namespace/class scope persist for the whole file, names
/// declared inside a function (including its parameter list) are dropped
/// when the function ends, so a `double t` in one function does not taint
/// an integer `t` in the next. Single-declarator only — pragmatic.
class FloatNames {
 public:
  /// Scans line i for declarations. `in_fn` is whether the line starts
  /// inside a function body; a false edge after a true clears locals.
  void observe_line(const std::string& line, bool in_fn) {
    if (was_in_fn_ && !in_fn) local_.clear();
    was_in_fn_ = in_fn;
    static const std::regex kDecl(R"(\b(double|float)\s+(\w+)\s*[=;,{])");
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kDecl);
         it != std::sregex_iterator(); ++it) {
      // A declaration inside an unbalanced '(' is a parameter — local to
      // the function whose body follows.
      int depth = 0;
      for (std::size_t p = 0; p < static_cast<std::size_t>(it->position(0)); ++p) {
        if (line[p] == '(') ++depth;
        if (line[p] == ')') --depth;
      }
      (in_fn || depth > 0 ? local_ : global_).insert((*it)[2].str());
    }
  }

  bool contains(const std::string& name) const {
    return local_.count(name) != 0 || global_.count(name) != 0;
  }

 private:
  std::set<std::string> local_, global_;
  bool was_in_fn_ = false;
};

// ---------------------------------------------------------------------------
// Allow annotations
// ---------------------------------------------------------------------------

struct Allow {
  std::string rule;           ///< rule id, or "deterministic-merge" alias
  std::string justification;  ///< required, one line
};

/// Parses the allow annotations of one comment line.
std::vector<Allow> parse_allows(const std::string& comment) {
  std::vector<Allow> out;
  static const std::regex kAllow(R"(satlint:allow\(([\w-]+)\)\s*:?\s*([^/]*))");
  for (auto it = std::sregex_iterator(comment.begin(), comment.end(), kAllow);
       it != std::sregex_iterator(); ++it) {
    out.push_back({(*it)[1].str(), std::string(rstrip((*it)[2].str()))});
  }
  static const std::regex kMerge(R"(deterministic-merge\s*[-:]*\s*([^/]*))");
  std::smatch m;
  if (std::regex_search(comment, m, kMerge)) {
    out.push_back({"float-accum", std::string(rstrip(m[1].str()))});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

bool path_has_dir(std::string_view path, std::string_view dir) {
  const std::string needle = "/" + std::string(dir) + "/";
  const std::string prefix = std::string(dir) + "/";
  return path.find(needle) != std::string_view::npos ||
         path.substr(0, prefix.size()) == prefix;
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

FileClass classify(std::string_view path) {
  FileClass fc;
  // Module = directory under src/, or the top-level tree for bench/
  // examples/tests.
  static const std::vector<std::string> kModules = {
      "stats", "geo",  "obs",   "runtime", "sim",   "orbit", "net",
      "transport", "bgp", "weather", "dns", "http", "video", "synth",
      "mlab", "ripe", "prolific", "snoid", "io", "fault"};
  for (const std::string& m : kModules) {
    if (path_has_dir(path, m)) fc.module = m;
  }
  if (fc.module.empty()) {
    for (std::string_view top : {"bench", "examples", "tests"}) {
      if (path_has_dir(path, top)) fc.module = std::string(top);
    }
  }

  const auto is = [&](std::initializer_list<std::string_view> mods) {
    for (std::string_view m : mods) {
      if (fc.module == m) return true;
    }
    return false;
  };
  // D2: report/export paths — where container order becomes output order.
  static const std::regex kReportFile(
      R"((campaign|report|export|pipeline|analysis)[^/]*\.(cpp|hpp|h)$)");
  fc.report_path = is({"io", "obs"}) ||
                   std::regex_search(std::string(path), kReportFile);
  // D3: the sharded campaign layers.
  fc.sharded = is({"runtime", "mlab", "ripe", "snoid"});
  // D4: anything executed on ThreadPool workers (shard bodies call into
  // these modules), plus the obs layer they all report to.
  fc.worker = fc.sharded || is({"sim", "orbit", "transport", "http", "dns",
                                "video", "weather", "stats", "obs"});
  // D5: where shard results are merged or cross-thread values folded.
  fc.merge_path = fc.sharded || is({"obs"});
  // D6: every src/ module except fault itself (which implements the
  // hook) — bench/examples/tests may name injection knobs freely.
  fc.injection_scope =
      !fc.module.empty() && fc.module != "fault" &&
      !is({"bench", "examples", "tests"});
  // D7: the persistence layer — the only place binary artifacts are
  // written and mapped, so the only place their hazards can originate.
  fc.persist_scope = is({"io"});
  // D1: the telemetry boundary. src/obs (flight recorder wall_us,
  // span timing) and src/runtime (queue-wait, watchdog) own the
  // monotonic clock; reads there are recorded as suppressions instead
  // of demanding a per-line allow.
  fc.clock_boundary = is({"obs", "runtime"});
  return fc;
}

FileReport lint_source(std::string_view path, std::string_view content,
                       const LintOptions& options) {
  FileReport report;
  report.path = std::string(path);
  for (const std::string& w : options.whitelist) {
    if (report.path.find(w) != std::string::npos) return report;
  }

  const FileClass fc = classify(path);
  const Sanitized s = sanitize(content);
  const std::vector<bool> in_fn = function_lines(s.code);
  const std::set<std::string> unordered = unordered_names(s.code);
  FloatNames floats;

  // Allows per line; "own line" allows (comment-only lines) also cover
  // the next line.
  std::vector<std::vector<Allow>> allows(s.code.size());
  for (std::size_t i = 0; i < s.code.size(); ++i) {
    std::vector<Allow> line_allows = parse_allows(s.comment[i]);
    if (line_allows.empty()) continue;
    for (const Allow& a : line_allows) {
      if (a.justification.empty()) {
        report.violations.push_back(
            {report.path, static_cast<int>(i + 1), "bad-allow",
             "suppression of '" + a.rule +
                 "' needs a one-line justification: // satlint:allow(" + a.rule +
                 "): <why this is safe>"});
      }
    }
    allows[i].insert(allows[i].end(), line_allows.begin(), line_allows.end());
    const bool own_line = rstrip(s.code[i]).empty();
    if (own_line && i + 1 < s.code.size()) {
      allows[i + 1].insert(allows[i + 1].end(), line_allows.begin(),
                           line_allows.end());
    }
  }

  const auto emit = [&](std::size_t i, std::string_view rule, std::string message) {
    for (const Allow& a : allows[i]) {
      if (a.rule == rule && !a.justification.empty()) {
        report.suppressed.push_back(
            {report.path, static_cast<int>(i + 1), std::string(rule),
             std::move(message) + " [allowed: " + a.justification + "]"});
        return;
      }
    }
    report.violations.push_back(
        {report.path, static_cast<int>(i + 1), std::string(rule), std::move(message)});
  };

  static const std::regex kRand(R"(\b(rand|srand)\s*\()");
  static const std::regex kRandomDevice(R"(\brandom_device\b)");
  static const std::regex kClockNow(R"(\b\w*_clock::now\b)");
  static const std::regex kTimeSeed(R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))");
  static const std::regex kDateTime(R"(__DATE__|__TIME__|__TIMESTAMP__)");
  static const std::regex kRangeFor(R"(\bfor\s*\(([^;)]*):([^)]+)\))");
  static const std::regex kBeginCall(R"((\w+)\s*\.\s*c?begin\s*\(\))");
  static const std::regex kRawRng(R"((^|[^:\w])Rng\s+\w+\s*[({=])");
  static const std::regex kRngTemp(R"((^|[^:\w])Rng\s*\()");
  static const std::regex kStaticLocal(R"(^\s*static\s+)");
  static const std::regex kStaticExempt(
      R"(^\s*static\s+(const\b|constexpr\b|thread_local\b)|static_assert|std::atomic)");
  static const std::regex kCompoundAdd(R"((\w+)\s*[+-]=[^=])");
  static const std::regex kAdhocInject(R"((^|[^\w])(inject_\w+))");
  static const std::regex kDirIter(R"(\b(recursive_)?directory_iterator\b)");
  static const std::regex kMmapCall(R"((^|[^\w])mmap\s*\()");
  static const std::regex kBinaryWrite(R"(\bofstream\b[^;]*\bbinary\b|\bfwrite\s*\()");
  static const std::regex kVersionStamp(R"(\bk\w*Version\b)");

  // D7's binary-write check is file-scoped: any mention of a version
  // constant means the format is stamped and loads can reject stale
  // files, so every write in the file inherits the exemption.
  bool version_stamped = false;
  if (fc.persist_scope) {
    for (const std::string& cl : s.code) {
      if (std::regex_search(cl, kVersionStamp)) {
        version_stamped = true;
        break;
      }
    }
  }

  for (std::size_t i = 0; i < s.code.size(); ++i) {
    const std::string& cl = s.code[i];
    floats.observe_line(cl, in_fn[i]);
    if (rstrip(cl).empty()) continue;

    // D1 — nondet-source (all scanned files).
    if (std::regex_search(cl, kRand)) {
      emit(i, "nondet-source",
           "rand()/srand() draws from hidden global state; use stats::Rng "
           "seeded from the config");
    }
    if (std::regex_search(cl, kRandomDevice)) {
      emit(i, "nondet-source",
           "std::random_device is nondeterministic by design; campaigns must "
           "be a pure function of their seed");
    }
    if (std::regex_search(cl, kClockNow)) {
      bool explicitly_allowed = false;
      for (const Allow& a : allows[i]) {
        if (a.rule == "nondet-source" && !a.justification.empty()) {
          explicitly_allowed = true;
        }
      }
      if (fc.clock_boundary && !explicitly_allowed) {
        report.suppressed.push_back(
            {report.path, static_cast<int>(i + 1), "nondet-source",
             "clock read inside the telemetry boundary [allowed: src/obs "
             "and src/runtime own the monotonic clock; wall-clock fields "
             "are excluded from goldens]"});
      } else {
        emit(i, "nondet-source",
             "clock reads differ across runs; results must never depend on "
             "wall-clock (telemetry-only reads need an allow)");
      }
    }
    if (std::regex_search(cl, kTimeSeed)) {
      emit(i, "nondet-source",
           "time(...) as a seed makes every run different; seed from the "
           "config instead");
    }
    if (std::regex_search(cl, kDateTime)) {
      emit(i, "nondet-source",
           "__DATE__/__TIME__ bake the build time into the binary; output "
           "would differ across rebuilds");
    }

    // D2 — unordered-iter (report/export paths).
    if (fc.report_path) {
      std::smatch m;
      if (std::regex_search(cl, m, kRangeFor)) {
        std::string expr = m[2].str();
        expr = std::string(rstrip(expr));
        const std::size_t ws = expr.find_last_of(" \t");
        const std::string ident = ws == std::string::npos ? expr : expr.substr(ws + 1);
        if (unordered.count(ident) != 0 ||
            expr.find("unordered_") != std::string::npos) {
          emit(i, "unordered-iter",
               "range-for over unordered container '" + ident +
                   "' in a report path; bucket order is implementation-"
                   "defined — copy to a sorted container first");
        }
      }
      for (auto it = std::sregex_iterator(cl.begin(), cl.end(), kBeginCall);
           it != std::sregex_iterator(); ++it) {
        const std::string ident = (*it)[1].str();
        if (unordered.count(ident) != 0) {
          emit(i, "unordered-iter",
               "iterator walk of unordered container '" + ident +
                   "' in a report path; bucket order is implementation-"
                   "defined — copy to a sorted container first");
        }
      }
    }

    // D3 — raw-rng (sharded code).
    if (fc.sharded && cl.find("fork") == std::string::npos) {
      if (std::regex_search(cl, kRawRng) || std::regex_search(cl, kRngTemp)) {
        emit(i, "raw-rng",
             "Rng constructed from a raw seed in sharded code; derive the "
             "stream with fork_stable(stable shard key) so results don't "
             "depend on shard scheduling");
      }
    }

    // D4 — shared-state (worker-executed code).
    if (fc.worker && in_fn[i] && std::regex_search(cl, kStaticLocal) &&
        !std::regex_search(cl, kStaticExempt)) {
      emit(i, "shared-state",
           "function-local static in worker-executed code is mutable state "
           "shared across threads; hoist it into shard-local state or make "
           "it const/atomic");
    }

    // D6 — adhoc-inject (src/ modules outside fault/).
    if (fc.injection_scope) {
      std::smatch m;
      if (std::regex_search(cl, m, kAdhocInject)) {
        emit(i, "adhoc-inject",
             "ad-hoc fault toggle '" + m[2].str() +
                 "'; injection points must query fault::Hook (gateway_down, "
                 "extra_space_loss, fail_shard, ...) so the active FaultPlan "
                 "stays the single replayable source of faults");
      }
    }

    // D7 — persist-nondet (src/io persistence code).
    if (fc.persist_scope) {
      if (std::regex_search(cl, kDirIter)) {
        emit(i, "persist-nondet",
             "directory iteration order is filesystem-dependent; collect "
             "the entries and sort them before they influence any artifact "
             "or output");
      }
      if (std::regex_search(cl, kMmapCall)) {
        emit(i, "persist-nondet",
             "branching on mmap availability in persistence code; the "
             "non-mmap fallback must yield byte-identical results — "
             "annotate with satlint:allow(persist-nondet) asserting the "
             "equivalence");
      }
      if (!version_stamped && std::regex_search(cl, kBinaryWrite)) {
        emit(i, "persist-nondet",
             "binary artifact written in a file with no format-version "
             "stamp; stamp the format (a k...Version constant checked on "
             "load) so stale files are rejected instead of misparsed");
      }
      if (std::regex_search(cl, kClockNow)) {
        emit(i, "persist-nondet",
             "wall-clock read in the persistence layer; a timestamp "
             "written into an artifact would break byte-identical "
             "replays — take stamps from the caller instead");
      }
    }

    // D5 — float-accum (merge paths).
    if (fc.merge_path) {
      for (auto it = std::sregex_iterator(cl.begin(), cl.end(), kCompoundAdd);
           it != std::sregex_iterator(); ++it) {
        const std::string ident = (*it)[1].str();
        // A step expression in a for-header ("t += interval") is a loop
        // counter, not a cross-item accumulation.
        static const std::regex kForHeader(R"(\bfor\s*\()");
        std::smatch fh;
        if (std::regex_search(cl, fh, kForHeader)) {
          int depth = 0;
          bool in_header = false;
          for (std::size_t p = static_cast<std::size_t>(fh.position(0));
               p < static_cast<std::size_t>(it->position(0)) && p < cl.size(); ++p) {
            if (cl[p] == '(') ++depth;
            if (cl[p] == ')') --depth;
          }
          in_header = depth > 0;
          if (in_header) continue;
        }
        if (floats.contains(ident)) {
          emit(i, "float-accum",
               "'" + ident +
                   "' accumulates floating-point values in a merge path; "
                   "float addition is order-sensitive — annotate the fixed "
                   "iteration order with // satlint: deterministic-merge: "
                   "<why>");
        }
      }
    }
  }

  std::sort(report.violations.begin(), report.violations.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return report;
}

// ---------------------------------------------------------------------------
// Tree walking
// ---------------------------------------------------------------------------

namespace {

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TreeReport lint_paths(const std::vector<std::pair<std::string, std::filesystem::path>>&
                          virtual_and_real,
                      const LintOptions& options) {
  TreeReport tree;
  for (const auto& [vpath, rpath] : virtual_and_real) {
    bool whitelisted = false;
    for (const std::string& w : options.whitelist) {
      if (vpath.find(w) != std::string::npos) whitelisted = true;
    }
    if (whitelisted) {
      ++tree.files_whitelisted;
      continue;
    }
    ++tree.files_scanned;
    FileReport fr = lint_source(vpath, read_file(rpath), options);
    if (!fr.violations.empty() || !fr.suppressed.empty()) {
      tree.files.push_back(std::move(fr));
    }
  }
  return tree;
}

}  // namespace

TreeReport lint_tree(const std::string& root, const std::vector<std::string>& subdirs,
                     const LintOptions& options) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, fs::path>> files;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files.emplace_back(fs::relative(entry.path(), root).generic_string(),
                           entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return lint_paths(files, options);
}

TreeReport lint_files(const std::vector<std::string>& paths,
                      const LintOptions& options) {
  std::vector<std::pair<std::string, std::filesystem::path>> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) files.emplace_back(p, p);
  return lint_paths(files, options);
}

std::size_t TreeReport::violation_count() const {
  std::size_t n = 0;
  for (const FileReport& f : files) n += f.violations.size();
  return n;
}

std::size_t TreeReport::suppressed_count() const {
  std::size_t n = 0;
  for (const FileReport& f : files) n += f.suppressed.size();
  return n;
}

// ---------------------------------------------------------------------------
// JSON report (emit + parse, round-trippable)
// ---------------------------------------------------------------------------

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void emit_diags(std::ostringstream& out, const TreeReport& report,
                const std::vector<Diagnostic> FileReport::*member) {
  bool first = true;
  for (const FileReport& f : report.files) {
    for (const Diagnostic& d : f.*member) {
      if (!first) out << ",";
      first = false;
      out << "\n    {\"file\":\"" << json_escape(d.file) << "\",\"line\":" << d.line
          << ",\"rule\":\"" << json_escape(d.rule) << "\",\"message\":\""
          << json_escape(d.message) << "\"}";
    }
  }
  if (!first) out << "\n  ";
}

/// Minimal JSON reader for the report schema (objects, arrays, strings,
/// non-negative integers). Not a general-purpose parser.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  bool ok() const { return ok_; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    ok_ = false;
    return false;
  }

  bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  std::string string() {
    skip_ws();
    std::string out;
    if (!consume('"')) return out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char n = text_[pos_++];
        c = n == 'n' ? '\n' : n == 't' ? '\t' : n;
      }
      out += c;
    }
    if (!consume('"')) ok_ = false;
    return out;
  }

  long integer() {
    skip_ws();
    long v = 0;
    bool any = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + (text_[pos_++] - '0');
      any = true;
    }
    if (!any) ok_ = false;
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::string to_json(const TreeReport& report) {
  std::ostringstream out;
  out << "{\n  \"satlint_version\": 1,\n  \"files_scanned\": " << report.files_scanned
      << ",\n  \"files_whitelisted\": " << report.files_whitelisted
      << ",\n  \"violations\": [";
  emit_diags(out, report, &FileReport::violations);
  out << "],\n  \"suppressed\": [";
  emit_diags(out, report, &FileReport::suppressed);
  out << "]\n}\n";
  return out.str();
}

std::optional<TreeReport> from_json(std::string_view json) {
  JsonReader r(json);
  TreeReport tree;
  if (!r.consume('{')) return std::nullopt;

  // file path -> report, in first-seen order via index map.
  std::map<std::string, std::size_t> index;
  const auto file_report = [&](const std::string& path) -> FileReport& {
    const auto it = index.find(path);
    if (it != index.end()) return tree.files[it->second];
    index.emplace(path, tree.files.size());
    tree.files.push_back({path, {}, {}});
    return tree.files.back();
  };

  bool first_key = true;
  while (r.ok() && !r.peek_is('}')) {
    if (!first_key && !r.consume(',')) return std::nullopt;
    first_key = false;
    const std::string key = r.string();
    if (!r.consume(':')) return std::nullopt;
    if (key == "satlint_version") {
      r.integer();
    } else if (key == "files_scanned") {
      tree.files_scanned = static_cast<std::size_t>(r.integer());
    } else if (key == "files_whitelisted") {
      tree.files_whitelisted = static_cast<std::size_t>(r.integer());
    } else if (key == "violations" || key == "suppressed") {
      if (!r.consume('[')) return std::nullopt;
      bool first = true;
      while (r.ok() && !r.peek_is(']')) {
        if (!first && !r.consume(',')) return std::nullopt;
        first = false;
        if (!r.consume('{')) return std::nullopt;
        Diagnostic d;
        bool first_field = true;
        while (r.ok() && !r.peek_is('}')) {
          if (!first_field && !r.consume(',')) return std::nullopt;
          first_field = false;
          const std::string field = r.string();
          if (!r.consume(':')) return std::nullopt;
          if (field == "file") {
            d.file = r.string();
          } else if (field == "line") {
            d.line = static_cast<int>(r.integer());
          } else if (field == "rule") {
            d.rule = r.string();
          } else if (field == "message") {
            d.message = r.string();
          } else {
            return std::nullopt;
          }
        }
        if (!r.consume('}')) return std::nullopt;
        FileReport& fr = file_report(d.file);
        (key == "violations" ? fr.violations : fr.suppressed).push_back(std::move(d));
      }
      if (!r.consume(']')) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  if (!r.consume('}') || !r.ok()) return std::nullopt;
  return tree;
}

}  // namespace satlint
