#include "satlint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <tuple>

#include "graph.hpp"
#include "lex.hpp"

namespace satlint {

namespace {

using lex::rstrip;

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"nondet-source",
     "banned nondeterminism source (rand/srand, std::random_device, "
     "*_clock::now, time(nullptr) seeds, __DATE__/__TIME__); clock reads "
     "are auto-allowed inside the telemetry boundary (src/obs, "
     "src/runtime)"},
    {"unordered-iter",
     "iteration over std::unordered_{map,set} in a report/export path; "
     "bucket order is implementation-defined and leaks into output"},
    {"raw-rng",
     "Rng constructed from a seed inside sharded code; derive shard "
     "streams with Rng::fork_stable(stable key) instead"},
    {"shared-state",
     "function-local static (non-const, non-atomic) in worker-executed "
     "code; workers on different threads would share it"},
    {"float-accum",
     "+=/-= on a floating-point accumulator in a merge path without a "
     "deterministic-merge annotation; float addition is order-sensitive"},
    {"adhoc-inject",
     "ad-hoc fault toggle (inject_* identifier) in a src/ module; every "
     "injection point must go through fault::Hook so fault plans stay "
     "replayable and hits are counted"},
    {"persist-nondet",
     "persistence hazard in src/io: directory-iteration order, branching "
     "on mmap availability, a binary write in a file with no format-"
     "version stamp (k...Version constant), or a wall-clock read that "
     "could stamp nondeterministic bytes into an artifact"},
    {"layering",
     "include edge outside the declared module DAG (tools/satlint/"
     "graph.cpp kAllowedDeps), or an include cycle; the module graph is "
     "the layering contract"},
    {"nondet-taint",
     "a call in a src/ report/export path reaches, through the call "
     "graph, a nondeterminism source in another file — the laundered-"
     "clock case the per-file rules cannot see"},
    {"worker-reach",
     "mutable static or raw Rng in a function reachable from a worker "
     "entry (ThreadPool::submit / ShardedCampaign / std::thread), "
     "wherever it lives — true reachability, not directory "
     "classification"},
    {"bad-allow",
     "satlint:allow()/deterministic-merge annotation without a one-line "
     "justification"},
    {"stale-allow",
     "satlint:allow() that no longer suppresses any diagnostic; dead "
     "justifications hide drift and inflate the suppression budget"},
};

// ---------------------------------------------------------------------------
// Declaration tracking (pragmatic, per file)
// ---------------------------------------------------------------------------

/// Names declared with an unordered container type anywhere in the file.
std::set<std::string> unordered_names(const std::vector<std::string>& code) {
  std::set<std::string> names;
  static const std::regex kDecl(R"(\bunordered_(map|set|multimap|multiset)\s*<)");
  for (const std::string& line : code) {
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kDecl);
         it != std::sregex_iterator(); ++it) {
      // Walk the template argument list to its closing '>'.
      std::size_t p = static_cast<std::size_t>(it->position(0)) + it->length(0);
      int depth = 1;
      while (p < line.size() && depth > 0) {
        if (line[p] == '<') ++depth;
        if (line[p] == '>') --depth;
        ++p;
      }
      static const std::regex kName(R"(^\s*&?\s*(\w+))");
      std::smatch nm;
      const std::string rest = line.substr(p);
      if (std::regex_search(rest, nm, kName)) names.insert(nm[1].str());
    }
  }
  return names;
}

/// Tracks double/float declarations with function-level scoping: names
/// declared at namespace/class scope persist for the whole file, names
/// declared inside a function (including its parameter list) are dropped
/// when the function ends, so a `double t` in one function does not taint
/// an integer `t` in the next. Single-declarator only — pragmatic.
class FloatNames {
 public:
  /// Scans line i for declarations. `in_fn` is whether the line starts
  /// inside a function body; a false edge after a true clears locals.
  void observe_line(const std::string& line, bool in_fn) {
    if (was_in_fn_ && !in_fn) local_.clear();
    was_in_fn_ = in_fn;
    static const std::regex kDecl(R"(\b(double|float)\s+(\w+)\s*[=;,{])");
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kDecl);
         it != std::sregex_iterator(); ++it) {
      // A declaration inside an unbalanced '(' is a parameter — local to
      // the function whose body follows.
      int depth = 0;
      for (std::size_t p = 0; p < static_cast<std::size_t>(it->position(0)); ++p) {
        if (line[p] == '(') ++depth;
        if (line[p] == ')') --depth;
      }
      (in_fn || depth > 0 ? local_ : global_).insert((*it)[2].str());
    }
  }

  bool contains(const std::string& name) const {
    return local_.count(name) != 0 || global_.count(name) != 0;
  }

 private:
  std::set<std::string> local_, global_;
  bool was_in_fn_ = false;
};

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

bool path_has_dir(std::string_view path, std::string_view dir) {
  const std::string needle = "/" + std::string(dir) + "/";
  const std::string prefix = std::string(dir) + "/";
  return path.find(needle) != std::string_view::npos ||
         path.substr(0, prefix.size()) == prefix;
}

// ---------------------------------------------------------------------------
// Per-file analysis: one file's sanitized view, allow map, and report.
// The allow map tracks usage so the project-level stale-allow pass can
// flag justifications that stopped paying for a diagnostic.
// ---------------------------------------------------------------------------

struct Analysis {
  std::string path;
  FileClass fc;
  lex::Sanitized s;
  std::vector<bool> in_fn;
  lex::AllowMap allows;
  std::vector<bool> allow_used;  ///< parallel to allows.sites
  FileReport report;
};

Analysis analyze(std::string_view path, std::string_view content) {
  Analysis a;
  a.path = std::string(path);
  a.fc = classify(path);
  a.s = lex::sanitize(content);
  a.in_fn = lex::function_lines(a.s.code);
  a.allows = lex::build_allow_map(a.s);
  a.allow_used.assign(a.allows.sites.size(), false);
  a.report.path = a.path;
  for (std::size_t i = 0; i < a.allows.sites.size(); ++i) {
    const lex::AllowSite& site = a.allows.sites[i];
    if (site.allow.justification.empty()) {
      a.report.violations.push_back(
          {a.path, site.line, "bad-allow",
           "suppression of '" + site.allow.rule +
               "' needs a one-line justification: // satlint:allow(" +
               site.allow.rule + "): <why this is safe>"});
      a.allow_used[i] = true;  // already a violation; not also stale
    }
  }
  return a;
}

/// Emits a finding at 1-based `line`, downgrading it to a suppression
/// when a justified allow for `rule` covers the line.
void emit(Analysis& a, int line, std::string_view rule, std::string message) {
  const std::size_t li = static_cast<std::size_t>(line - 1);
  if (li < a.allows.line_sites.size()) {
    for (const int idx : a.allows.line_sites[li]) {
      const lex::AllowSite& site = a.allows.sites[static_cast<std::size_t>(idx)];
      if (site.allow.rule == rule && !site.allow.justification.empty()) {
        a.allow_used[static_cast<std::size_t>(idx)] = true;
        a.report.suppressed.push_back(
            {a.path, line, std::string(rule),
             std::move(message) + " [allowed: " + site.allow.justification + "]"});
        return;
      }
    }
  }
  a.report.violations.push_back({a.path, line, std::string(rule), std::move(message)});
}

bool has_explicit_allow(const Analysis& a, std::size_t li, std::string_view rule) {
  if (li >= a.allows.line_sites.size()) return false;
  for (const int idx : a.allows.line_sites[li]) {
    const lex::AllowSite& site = a.allows.sites[static_cast<std::size_t>(idx)];
    if (site.allow.rule == rule && !site.allow.justification.empty()) return true;
  }
  return false;
}

// Shared with the worker-reach pass, which applies the same static /
// raw-Rng patterns to worker-reachable lines outside worker modules.
const std::regex kRawRng(R"((^|[^:\w])Rng\s+\w+\s*[({=])");
const std::regex kRngTemp(R"((^|[^:\w])Rng\s*\()");
const std::regex kStaticLocal(R"(^\s*static\s+)");
const std::regex kStaticExempt(
    R"(^\s*static\s+(const\b|constexpr\b|thread_local\b)|static_assert|std::atomic)");

void run_per_file_rules(Analysis& a) {
  const FileClass& fc = a.fc;
  const lex::Sanitized& s = a.s;
  const std::set<std::string> unordered = unordered_names(s.code);
  FloatNames floats;

  static const std::regex kRand(R"(\b(rand|srand)\s*\()");
  static const std::regex kRandomDevice(R"(\brandom_device\b)");
  static const std::regex kClockNow(R"(\b\w*_clock::now\b)");
  static const std::regex kTimeSeed(R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))");
  static const std::regex kDateTime(R"(__DATE__|__TIME__|__TIMESTAMP__)");
  static const std::regex kRangeFor(R"(\bfor\s*\(([^;)]*):([^)]+)\))");
  static const std::regex kBeginCall(R"((\w+)\s*\.\s*c?begin\s*\(\))");
  static const std::regex kCompoundAdd(R"((\w+)\s*[+-]=[^=])");
  static const std::regex kAdhocInject(R"((^|[^\w])(inject_\w+))");
  static const std::regex kDirIter(R"(\b(recursive_)?directory_iterator\b)");
  static const std::regex kMmapCall(R"((^|[^\w])mmap\s*\()");
  static const std::regex kBinaryWrite(R"(\bofstream\b[^;]*\bbinary\b|\bfwrite\s*\()");
  static const std::regex kVersionStamp(R"(\bk\w*Version\b)");

  // D7's binary-write check is file-scoped: any mention of a version
  // constant means the format is stamped and loads can reject stale
  // files, so every write in the file inherits the exemption.
  bool version_stamped = false;
  if (fc.persist_scope) {
    for (const std::string& cl : s.code) {
      if (std::regex_search(cl, kVersionStamp)) {
        version_stamped = true;
        break;
      }
    }
  }

  for (std::size_t i = 0; i < s.code.size(); ++i) {
    const std::string& cl = s.code[i];
    const int line = static_cast<int>(i + 1);
    floats.observe_line(cl, a.in_fn[i]);
    if (rstrip(cl).empty()) continue;

    // D1 — nondet-source (all scanned files).
    if (std::regex_search(cl, kRand)) {
      emit(a, line, "nondet-source",
           "rand()/srand() draws from hidden global state; use stats::Rng "
           "seeded from the config");
    }
    if (std::regex_search(cl, kRandomDevice)) {
      emit(a, line, "nondet-source",
           "std::random_device is nondeterministic by design; campaigns must "
           "be a pure function of their seed");
    }
    if (std::regex_search(cl, kClockNow)) {
      if (fc.clock_boundary && !has_explicit_allow(a, i, "nondet-source")) {
        a.report.suppressed.push_back(
            {a.path, line, "nondet-source",
             "clock read inside the telemetry boundary [allowed: src/obs "
             "and src/runtime own the monotonic clock; wall-clock fields "
             "are excluded from goldens]"});
      } else {
        emit(a, line, "nondet-source",
             "clock reads differ across runs; results must never depend on "
             "wall-clock (telemetry-only reads need an allow)");
      }
    }
    if (std::regex_search(cl, kTimeSeed)) {
      emit(a, line, "nondet-source",
           "time(...) as a seed makes every run different; seed from the "
           "config instead");
    }
    if (std::regex_search(cl, kDateTime)) {
      emit(a, line, "nondet-source",
           "__DATE__/__TIME__ bake the build time into the binary; output "
           "would differ across rebuilds");
    }

    // D2 — unordered-iter (report/export paths).
    if (fc.report_path) {
      std::smatch m;
      if (std::regex_search(cl, m, kRangeFor)) {
        std::string expr = m[2].str();
        expr = std::string(rstrip(expr));
        const std::size_t ws = expr.find_last_of(" \t");
        const std::string ident = ws == std::string::npos ? expr : expr.substr(ws + 1);
        if (unordered.count(ident) != 0 ||
            expr.find("unordered_") != std::string::npos) {
          emit(a, line, "unordered-iter",
               "range-for over unordered container '" + ident +
                   "' in a report path; bucket order is implementation-"
                   "defined — copy to a sorted container first");
        }
      }
      for (auto it = std::sregex_iterator(cl.begin(), cl.end(), kBeginCall);
           it != std::sregex_iterator(); ++it) {
        const std::string ident = (*it)[1].str();
        if (unordered.count(ident) != 0) {
          emit(a, line, "unordered-iter",
               "iterator walk of unordered container '" + ident +
                   "' in a report path; bucket order is implementation-"
                   "defined — copy to a sorted container first");
        }
      }
    }

    // D3 — raw-rng (sharded code).
    if (fc.sharded && cl.find("fork") == std::string::npos) {
      if (std::regex_search(cl, kRawRng) || std::regex_search(cl, kRngTemp)) {
        emit(a, line, "raw-rng",
             "Rng constructed from a raw seed in sharded code; derive the "
             "stream with fork_stable(stable shard key) so results don't "
             "depend on shard scheduling");
      }
    }

    // D4 — shared-state (worker-executed code).
    if (fc.worker && a.in_fn[i] && std::regex_search(cl, kStaticLocal) &&
        !std::regex_search(cl, kStaticExempt)) {
      emit(a, line, "shared-state",
           "function-local static in worker-executed code is mutable state "
           "shared across threads; hoist it into shard-local state or make "
           "it const/atomic");
    }

    // D6 — adhoc-inject (src/ modules outside fault/).
    if (fc.injection_scope) {
      std::smatch m;
      if (std::regex_search(cl, m, kAdhocInject)) {
        emit(a, line, "adhoc-inject",
             "ad-hoc fault toggle '" + m[2].str() +
                 "'; injection points must query fault::Hook (gateway_down, "
                 "extra_space_loss, fail_shard, ...) so the active FaultPlan "
                 "stays the single replayable source of faults");
      }
    }

    // D7 — persist-nondet (src/io persistence code).
    if (fc.persist_scope) {
      if (std::regex_search(cl, kDirIter)) {
        emit(a, line, "persist-nondet",
             "directory iteration order is filesystem-dependent; collect "
             "the entries and sort them before they influence any artifact "
             "or output");
      }
      if (std::regex_search(cl, kMmapCall)) {
        emit(a, line, "persist-nondet",
             "branching on mmap availability in persistence code; the "
             "non-mmap fallback must yield byte-identical results — "
             "annotate with satlint:allow(persist-nondet) asserting the "
             "equivalence");
      }
      if (!version_stamped && std::regex_search(cl, kBinaryWrite)) {
        emit(a, line, "persist-nondet",
             "binary artifact written in a file with no format-version "
             "stamp; stamp the format (a k...Version constant checked on "
             "load) so stale files are rejected instead of misparsed");
      }
      if (std::regex_search(cl, kClockNow)) {
        emit(a, line, "persist-nondet",
             "wall-clock read in the persistence layer; a timestamp "
             "written into an artifact would break byte-identical "
             "replays — take stamps from the caller instead");
      }
    }

    // D5 — float-accum (merge paths).
    if (fc.merge_path) {
      for (auto it = std::sregex_iterator(cl.begin(), cl.end(), kCompoundAdd);
           it != std::sregex_iterator(); ++it) {
        const std::string ident = (*it)[1].str();
        // A step expression in a for-header ("t += interval") is a loop
        // counter, not a cross-item accumulation.
        static const std::regex kForHeader(R"(\bfor\s*\()");
        std::smatch fh;
        if (std::regex_search(cl, fh, kForHeader)) {
          int depth = 0;
          for (std::size_t p = static_cast<std::size_t>(fh.position(0));
               p < static_cast<std::size_t>(it->position(0)) && p < cl.size(); ++p) {
            if (cl[p] == '(') ++depth;
            if (cl[p] == ')') --depth;
          }
          if (depth > 0) continue;
        }
        if (floats.contains(ident)) {
          emit(a, line, "float-accum",
               "'" + ident +
                   "' accumulates floating-point values in a merge path; "
                   "float addition is order-sensitive — annotate the fixed "
                   "iteration order with // satlint: deterministic-merge: "
                   "<why>");
        }
      }
    }
  }
}

void run_stale_allow(Analysis& a) {
  for (std::size_t i = 0; i < a.allows.sites.size(); ++i) {
    if (a.allow_used[i]) continue;
    const lex::AllowSite& site = a.allows.sites[i];
    a.report.violations.push_back(
        {a.path, site.line, "stale-allow",
         "allow(" + site.allow.rule +
             ") suppresses nothing; a justification that pays for no live "
             "diagnostic hides drift — delete the annotation (or re-point "
             "it at the rule that actually fires)"});
  }
}

void sort_report(FileReport& report) {
  const auto by_pos = [](const Diagnostic& x, const Diagnostic& y) {
    return std::tie(x.line, x.rule, x.message) < std::tie(y.line, y.rule, y.message);
  };
  std::sort(report.violations.begin(), report.violations.end(), by_pos);
  std::sort(report.suppressed.begin(), report.suppressed.end(), by_pos);
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

FileClass classify(std::string_view path) {
  FileClass fc;
  // Module = directory under src/, or the top-level tree for bench/
  // examples/tests.
  static const std::vector<std::string> kModules = {
      "stats", "geo",  "obs",   "runtime", "sim",   "orbit", "net",
      "transport", "bgp", "weather", "dns", "http", "video", "synth",
      "mlab", "ripe", "prolific", "snoid", "io", "fault"};
  for (const std::string& m : kModules) {
    if (path_has_dir(path, m)) fc.module = m;
  }
  if (fc.module.empty()) {
    for (std::string_view top : {"bench", "examples", "tests"}) {
      if (path_has_dir(path, top)) fc.module = std::string(top);
    }
  }

  const auto is = [&](std::initializer_list<std::string_view> mods) {
    for (std::string_view m : mods) {
      if (fc.module == m) return true;
    }
    return false;
  };
  // D2: report/export paths — where container order becomes output order.
  static const std::regex kReportFile(
      R"((campaign|report|export|pipeline|analysis)[^/]*\.(cpp|hpp|h)$)");
  fc.report_path = is({"io", "obs"}) ||
                   std::regex_search(std::string(path), kReportFile);
  // D3: the sharded campaign layers.
  fc.sharded = is({"runtime", "mlab", "ripe", "snoid"});
  // D4: anything executed on ThreadPool workers (shard bodies call into
  // these modules), plus the obs layer they all report to.
  fc.worker = fc.sharded || is({"sim", "orbit", "transport", "http", "dns",
                                "video", "weather", "stats", "obs"});
  // D5: where shard results are merged or cross-thread values folded.
  fc.merge_path = fc.sharded || is({"obs"});
  // D6: every src/ module except fault itself (which implements the
  // hook) — bench/examples/tests may name injection knobs freely.
  fc.injection_scope =
      !fc.module.empty() && fc.module != "fault" &&
      !is({"bench", "examples", "tests"});
  // D7: the persistence layer — the only place binary artifacts are
  // written and mapped, so the only place their hazards can originate.
  fc.persist_scope = is({"io"});
  // D1: the telemetry boundary. src/obs (flight recorder wall_us,
  // span timing) and src/runtime (queue-wait, watchdog) own the
  // monotonic clock; reads there are recorded as suppressions instead
  // of demanding a per-line allow.
  fc.clock_boundary = is({"obs", "runtime"});
  return fc;
}

FileReport lint_source(std::string_view path, std::string_view content,
                       const LintOptions& options) {
  for (const std::string& w : options.whitelist) {
    if (path.find(w) != std::string_view::npos) {
      FileReport report;
      report.path = std::string(path);
      return report;
    }
  }
  Analysis a = analyze(path, content);
  run_per_file_rules(a);
  sort_report(a.report);
  return a.report;
}

// ---------------------------------------------------------------------------
// Tree walking & the whole-program pass
// ---------------------------------------------------------------------------

namespace {

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// The cross-TU pass: build (or load) the project graph, run D8/D9/D10,
/// then stale-allow. Findings are attached to the Analysis of their
/// file, which applies allow() handling uniformly; files without an
/// Analysis (outside the focus set) keep their findings unreported —
/// the full-tree CI scan focuses everything, so nothing is ever lost.
void project_pass(std::vector<Analysis*>& by_index,
                  const std::vector<std::pair<std::string, std::string>>& loaded,
                  const LintOptions& options) {
  std::vector<std::pair<std::string, std::string_view>> keyed;
  keyed.reserve(loaded.size());
  for (const auto& [vpath, content] : loaded) keyed.emplace_back(vpath, content);
  const std::uint64_t hash = graph::content_hash(keyed);

  std::optional<graph::Project> proj;
  if (!options.graph_cache.empty() &&
      std::filesystem::exists(options.graph_cache)) {
    proj = graph::deserialize(read_file(options.graph_cache), hash);
  }
  std::vector<lex::Sanitized> sanitized;
  if (!proj) {
    sanitized.resize(loaded.size());
    std::vector<graph::FileInput> inputs;
    inputs.reserve(loaded.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
      // Reuse the focus files' existing sanitized view.
      if (by_index[i] != nullptr) {
        inputs.push_back({loaded[i].first, loaded[i].second, &by_index[i]->s});
      } else {
        sanitized[i] = lex::sanitize(loaded[i].second);
        inputs.push_back({loaded[i].first, loaded[i].second, &sanitized[i]});
      }
    }
    proj = graph::build(std::move(inputs));
    if (!options.graph_cache.empty()) {
      std::ofstream out(options.graph_cache, std::ios::binary);
      out << graph::serialize(*proj, hash);
    }
  }

  if (!options.dot_path.empty()) {
    std::ofstream out(options.dot_path, std::ios::binary);
    out << graph::to_dot(*proj);
  }

  // Project file index -> Analysis (project order is sorted-by-path,
  // matching `loaded`, but map defensively by path).
  std::map<std::string, Analysis*> by_path;
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    if (by_index[i] != nullptr) by_path[loaded[i].first] = by_index[i];
  }
  const auto analysis_of = [&](int file) -> Analysis* {
    const auto it = by_path.find(proj->files[static_cast<std::size_t>(file)].path);
    return it == by_path.end() ? nullptr : it->second;
  };

  // D8 — layering.
  for (const graph::LayerFinding& f : check_layering(*proj)) {
    if (Analysis* a = analysis_of(f.file)) emit(*a, f.line, "layering", f.message);
  }

  // D9 — nondet-taint. Report surface = src/ report-path files only;
  // tests and benches read timers by design and write no artifacts.
  std::vector<bool> report_path(proj->files.size(), false);
  for (std::size_t i = 0; i < proj->files.size(); ++i) {
    const std::string& path = proj->files[i].path;
    report_path[i] = starts_with(path, "src/") && classify(path).report_path;
  }
  const graph::TaintResult taint = graph::check_taint(*proj, report_path);
  for (const graph::TaintFinding& f : taint.findings) {
    if (Analysis* a = analysis_of(f.file)) emit(*a, f.line, "nondet-taint", f.message);
  }
  for (const graph::TaintFinding& f : taint.root_suppressions) {
    Analysis* a = analysis_of(f.file);
    if (a == nullptr) continue;
    a->report.suppressed.push_back({a->path, f.line, "nondet-taint", f.message});
    const std::size_t li = static_cast<std::size_t>(f.line - 1);
    if (li < a->allows.line_sites.size()) {
      for (const int idx : a->allows.line_sites[li]) {
        if (a->allows.sites[static_cast<std::size_t>(idx)].allow.rule ==
            "nondet-taint") {
          a->allow_used[static_cast<std::size_t>(idx)] = true;
        }
      }
    }
  }

  // D10 — worker-reach. Scan the bodies of worker-reachable functions in
  // src/ files the directory classification does NOT already treat as
  // worker code (there D3/D4 fire with better messages).
  std::set<std::pair<int, int>> flagged;  // (file, line) — bodies can nest
  for (const int fn : graph::worker_reachable(*proj)) {
    const int file = proj->file_of(fn);
    const std::string& path = proj->files[static_cast<std::size_t>(file)].path;
    if (!starts_with(path, "src/")) continue;
    Analysis* a = analysis_of(file);
    if (a == nullptr || a->fc.worker) continue;
    const lex::FunctionDef& def = proj->def(fn);
    const std::string label = def.qualified.empty() ? def.name : def.qualified;
    for (int line = def.line_begin; line <= def.line_end; ++line) {
      const std::size_t li = static_cast<std::size_t>(line - 1);
      if (li >= a->s.code.size()) break;
      const std::string& cl = a->s.code[li];
      if (rstrip(cl).empty()) continue;
      if (a->in_fn[li] && std::regex_search(cl, kStaticLocal) &&
          !std::regex_search(cl, kStaticExempt) &&
          flagged.insert({file, line}).second) {
        emit(*a, line, "worker-reach",
             "'" + label +
                 "' is reachable from a worker entry (ThreadPool::submit / "
                 "ShardedCampaign shard body); this function-local static "
                 "would be shared across worker threads — hoist it into "
                 "shard-local state or make it const/atomic");
      }
      if (cl.find("fork") == std::string::npos &&
          (std::regex_search(cl, kRawRng) || std::regex_search(cl, kRngTemp)) &&
          flagged.insert({file, -line}).second) {
        emit(*a, line, "worker-reach",
             "'" + label +
                 "' is reachable from a worker entry; an Rng constructed "
                 "from a raw seed here makes results depend on shard "
                 "scheduling — derive the stream with fork_stable(stable "
                 "key)");
      }
    }
  }

  // stale-allow — every justification must still pay for a diagnostic.
  for (Analysis* a : by_index) {
    if (a != nullptr) run_stale_allow(*a);
  }
}

TreeReport lint_paths(const std::vector<std::pair<std::string, std::filesystem::path>>&
                          virtual_and_real,
                      const LintOptions& options, bool project_scope) {
  TreeReport tree;
  std::vector<std::pair<std::string, std::string>> loaded;  // vpath, content
  for (const auto& [vpath, rpath] : virtual_and_real) {
    bool whitelisted = false;
    for (const std::string& w : options.whitelist) {
      if (vpath.find(w) != std::string::npos) whitelisted = true;
    }
    if (whitelisted) {
      ++tree.files_whitelisted;
      continue;
    }
    loaded.emplace_back(vpath, read_file(rpath));
  }
  tree.files_scanned = loaded.size();

  const std::set<std::string> focus(options.focus.begin(), options.focus.end());
  std::vector<Analysis> analyses;
  analyses.reserve(loaded.size());
  std::vector<Analysis*> by_index(loaded.size(), nullptr);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    if (!focus.empty() && focus.count(loaded[i].first) == 0) continue;
    analyses.push_back(analyze(loaded[i].first, loaded[i].second));
    by_index[i] = &analyses.back();
  }
  for (Analysis& a : analyses) run_per_file_rules(a);

  if (project_scope && options.cross_tu) {
    project_pass(by_index, loaded, options);
  }

  for (Analysis& a : analyses) {
    sort_report(a.report);
    if (!a.report.violations.empty() || !a.report.suppressed.empty()) {
      tree.files.push_back(std::move(a.report));
    }
  }
  return tree;
}

}  // namespace

TreeReport lint_tree(const std::string& root, const std::vector<std::string>& subdirs,
                     const LintOptions& options) {
  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, fs::path>> files;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files.emplace_back(fs::relative(entry.path(), root).generic_string(),
                           entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return lint_paths(files, options, /*project_scope=*/true);
}

TreeReport lint_files(const std::vector<std::string>& paths,
                      const LintOptions& options) {
  std::vector<std::pair<std::string, std::filesystem::path>> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) files.emplace_back(p, p);
  return lint_paths(files, options, /*project_scope=*/false);
}

std::size_t TreeReport::violation_count() const {
  std::size_t n = 0;
  for (const FileReport& f : files) n += f.violations.size();
  return n;
}

std::size_t TreeReport::suppressed_count() const {
  std::size_t n = 0;
  for (const FileReport& f : files) n += f.suppressed.size();
  return n;
}

std::map<std::string, std::size_t> suppressions_by_rule(const TreeReport& report) {
  std::map<std::string, std::size_t> counts;
  for (const RuleInfo& r : kRules) counts[std::string(r.id)] = 0;
  for (const FileReport& f : report.files) {
    for (const Diagnostic& d : f.suppressed) ++counts[d.rule];
  }
  return counts;
}

// ---------------------------------------------------------------------------
// Suppression baseline
// ---------------------------------------------------------------------------

std::string format_baseline(const TreeReport& report) {
  const std::map<std::string, std::size_t> counts = suppressions_by_rule(report);
  std::ostringstream out;
  out << "# satlint suppression baseline — per-rule counts of justified\n"
      << "# allow()s (plus telemetry auto-suppressions) across the tree.\n"
      << "# CI fails on any drift; regenerate with:\n"
      << "#   satlint --root . --baseline tools/satlint/suppressions.baseline "
         "--write-baseline\n";
  for (const RuleInfo& r : kRules) {
    out << r.id << " " << counts.at(std::string(r.id)) << "\n";
  }
  return out.str();
}

std::optional<std::map<std::string, std::size_t>> parse_baseline(
    std::string_view text) {
  std::map<std::string, std::size_t> out;
  std::set<std::string> known;
  for (const RuleInfo& r : kRules) known.insert(std::string(r.id));

  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view stripped = rstrip(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    std::istringstream fields{std::string(stripped)};
    std::string rule;
    long count = -1;
    fields >> rule >> count;
    if (fields.fail() || count < 0 || known.count(rule) == 0) return std::nullopt;
    out[rule] = static_cast<std::size_t>(count);
  }
  return out;
}

std::vector<std::string> check_baseline(
    const TreeReport& report, const std::map<std::string, std::size_t>& baseline) {
  std::vector<std::string> errors;
  const std::map<std::string, std::size_t> counts = suppressions_by_rule(report);
  for (const RuleInfo& r : kRules) {
    const std::string id(r.id);
    const std::size_t actual = counts.at(id);
    const auto it = baseline.find(id);
    const std::size_t expected = it == baseline.end() ? 0 : it->second;
    if (actual > expected) {
      errors.push_back(
          id + ": " + std::to_string(actual) + " suppression(s), baseline " +
          std::to_string(expected) +
          " — a new allow() must bump tools/satlint/suppressions.baseline in "
          "the same PR");
    } else if (actual < expected) {
      errors.push_back(
          id + ": " + std::to_string(actual) + " suppression(s), baseline " +
          std::to_string(expected) +
          " — ratchet the baseline down so the budget cannot silently "
          "refill");
    }
  }
  return errors;
}

// ---------------------------------------------------------------------------
// JSON report (emit + parse, round-trippable)
// ---------------------------------------------------------------------------

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void emit_diags(std::ostringstream& out, const TreeReport& report,
                const std::vector<Diagnostic> FileReport::*member) {
  bool first = true;
  for (const FileReport& f : report.files) {
    for (const Diagnostic& d : f.*member) {
      if (!first) out << ",";
      first = false;
      out << "\n    {\"file\":\"" << json_escape(d.file) << "\",\"line\":" << d.line
          << ",\"rule\":\"" << json_escape(d.rule) << "\",\"message\":\""
          << json_escape(d.message) << "\"}";
    }
  }
  if (!first) out << "\n  ";
}

/// Minimal JSON reader for the report schema (objects, arrays, strings,
/// non-negative integers). Not a general-purpose parser.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  bool ok() const { return ok_; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    ok_ = false;
    return false;
  }

  bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  std::string string() {
    skip_ws();
    std::string out;
    if (!consume('"')) return out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char n = text_[pos_++];
        c = n == 'n' ? '\n' : n == 't' ? '\t' : n;
      }
      out += c;
    }
    if (!consume('"')) ok_ = false;
    return out;
  }

  long integer() {
    skip_ws();
    long v = 0;
    bool any = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + (text_[pos_++] - '0');
      any = true;
    }
    if (!any) ok_ = false;
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::string to_json(const TreeReport& report) {
  const std::map<std::string, std::size_t> counts = suppressions_by_rule(report);
  std::ostringstream out;
  out << "{\n  \"satlint_version\": 2,\n  \"files_scanned\": " << report.files_scanned
      << ",\n  \"files_whitelisted\": " << report.files_whitelisted
      << ",\n  \"suppression_count\": {";
  bool first = true;
  for (const RuleInfo& r : kRules) {
    if (!first) out << ",";
    first = false;
    out << "\n    \"" << r.id << "\": " << counts.at(std::string(r.id));
  }
  out << "\n  },\n  \"violations\": [";
  emit_diags(out, report, &FileReport::violations);
  out << "],\n  \"suppressed\": [";
  emit_diags(out, report, &FileReport::suppressed);
  out << "]\n}\n";
  return out.str();
}

std::optional<TreeReport> from_json(std::string_view json) {
  JsonReader r(json);
  TreeReport tree;
  if (!r.consume('{')) return std::nullopt;

  // file path -> report, in first-seen order via index map.
  std::map<std::string, std::size_t> index;
  const auto file_report = [&](const std::string& path) -> FileReport& {
    const auto it = index.find(path);
    if (it != index.end()) return tree.files[it->second];
    index.emplace(path, tree.files.size());
    tree.files.push_back({path, {}, {}});
    return tree.files.back();
  };

  bool first_key = true;
  while (r.ok() && !r.peek_is('}')) {
    if (!first_key && !r.consume(',')) return std::nullopt;
    first_key = false;
    const std::string key = r.string();
    if (!r.consume(':')) return std::nullopt;
    if (key == "satlint_version") {
      r.integer();
    } else if (key == "files_scanned") {
      tree.files_scanned = static_cast<std::size_t>(r.integer());
    } else if (key == "files_whitelisted") {
      tree.files_whitelisted = static_cast<std::size_t>(r.integer());
    } else if (key == "suppression_count") {
      // Derived from "suppressed" on emit; validated for shape, dropped.
      if (!r.consume('{')) return std::nullopt;
      bool first = true;
      while (r.ok() && !r.peek_is('}')) {
        if (!first && !r.consume(',')) return std::nullopt;
        first = false;
        r.string();
        if (!r.consume(':')) return std::nullopt;
        r.integer();
      }
      if (!r.consume('}')) return std::nullopt;
    } else if (key == "violations" || key == "suppressed") {
      if (!r.consume('[')) return std::nullopt;
      bool first = true;
      while (r.ok() && !r.peek_is(']')) {
        if (!first && !r.consume(',')) return std::nullopt;
        first = false;
        if (!r.consume('{')) return std::nullopt;
        Diagnostic d;
        bool first_field = true;
        while (r.ok() && !r.peek_is('}')) {
          if (!first_field && !r.consume(',')) return std::nullopt;
          first_field = false;
          const std::string field = r.string();
          if (!r.consume(':')) return std::nullopt;
          if (field == "file") {
            d.file = r.string();
          } else if (field == "line") {
            d.line = static_cast<int>(r.integer());
          } else if (field == "rule") {
            d.rule = r.string();
          } else if (field == "message") {
            d.message = r.string();
          } else {
            return std::nullopt;
          }
        }
        if (!r.consume('}')) return std::nullopt;
        FileReport& fr = file_report(d.file);
        (key == "violations" ? fr.violations : fr.suppressed).push_back(std::move(d));
      }
      if (!r.consume(']')) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  if (!r.consume('}') || !r.ok()) return std::nullopt;
  return tree;
}

}  // namespace satlint
