#include "lex.hpp"

#include <cctype>
#include <cstddef>
#include <regex>

namespace satlint::lex {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::string_view rstrip(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Source sanitizer
// ---------------------------------------------------------------------------

Sanitized sanitize(std::string_view src) {
  enum class St { code, line_comment, block_comment, str, chr, raw_str };
  St st = St::code;
  std::string raw_delim;  // for raw strings: the ")delim" terminator
  std::string code_line, comment_line;
  Sanitized out;

  const auto flush = [&] {
    out.code.push_back(code_line);
    out.comment.push_back(comment_line);
    code_line.clear();
    comment_line.clear();
  };

  // Is the '"' at src[i] the quote of a raw-string opener (R", uR", UR",
  // LR", u8R"), with the prefix not glued onto a longer identifier?
  const auto raw_opener = [&](std::size_t i) {
    if (i == 0 || src[i - 1] != 'R') return false;
    std::size_t start = i - 1;  // index of 'R'
    if (start >= 2 && src[start - 2] == 'u' && src[start - 1] == '8') {
      start -= 2;
    } else if (start >= 1 &&
               (src[start - 1] == 'u' || src[start - 1] == 'U' ||
                src[start - 1] == 'L')) {
      start -= 1;
    }
    if (start > 0 && is_ident_char(src[start - 1])) return false;
    // The raw delimiter must reach a '(' without hitting a character the
    // grammar forbids (whitespace, ')', '\\', '"') within 16 chars;
    // otherwise this is not a raw string and the quote is ordinary.
    std::size_t p = i + 1;
    while (p < src.size() && src[p] != '(') {
      const char d = src[p];
      if (p - i > 16 || d == ')' || d == '\\' || d == '"' ||
          std::isspace(static_cast<unsigned char>(d))) {
        return false;
      }
      ++p;
    }
    if (p >= src.size()) return false;
    return true;
  };

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::line_comment) st = St::code;
      flush();
      continue;
    }
    switch (st) {
      case St::code:
        if (c == '/' && next == '/') {
          st = St::line_comment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::block_comment;
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          if (raw_opener(i)) {
            // Raw string literal: find the delimiter up to '('.
            std::size_t p = i + 1;
            std::string delim;
            while (p < src.size() && src[p] != '(') delim += src[p++];
            raw_delim = ")" + delim + "\"";
            st = St::raw_str;
            code_line += "\"\"";
            i = p;  // at '('
          } else {
            st = St::str;
            code_line += '"';
          }
        } else if (c == '\'') {
          // Digit separator (1'000) is not a char literal.
          const bool sep = !code_line.empty() &&
                           std::isdigit(static_cast<unsigned char>(code_line.back())) &&
                           std::isalnum(static_cast<unsigned char>(next));
          if (sep) {
            code_line += ' ';
          } else {
            st = St::chr;
            code_line += '\'';
          }
        } else {
          code_line += c;
        }
        comment_line += ' ';
        break;
      case St::line_comment:
        comment_line += c;
        code_line += ' ';
        break;
      case St::block_comment:
        if (c == '*' && next == '/') {
          st = St::code;
          comment_line += ' ';
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case St::str:
        if (c == '\\') {
          code_line += "  ";
          if (next != '\0' && next != '\n') ++i;
        } else if (c == '"') {
          st = St::code;
          code_line += '"';
        } else {
          code_line += ' ';
        }
        comment_line += ' ';
        break;
      case St::chr:
        if (c == '\\') {
          code_line += "  ";
          if (next != '\0' && next != '\n') ++i;
        } else if (c == '\'') {
          st = St::code;
          code_line += '\'';
        } else {
          code_line += ' ';
        }
        comment_line += ' ';
        break;
      case St::raw_str:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          st = St::code;
          i += raw_delim.size() - 1;
        }
        code_line += ' ';
        comment_line += ' ';
        break;
    }
  }
  flush();
  return out;
}

// ---------------------------------------------------------------------------
// Scope tracking
// ---------------------------------------------------------------------------

namespace {

bool ends_with_token(std::string_view s, std::string_view tok) {
  s = rstrip(s);
  if (s.size() < tok.size() || s.substr(s.size() - tok.size()) != tok) return false;
  if (s.size() == tok.size()) return true;
  const char before = s[s.size() - tok.size() - 1];
  return !(std::isalnum(static_cast<unsigned char>(before)) || before == '_');
}

}  // namespace

Scope classify_brace(std::string_view ctx, bool in_function) {
  std::string t(rstrip(ctx));

  // Trailing return type / qualifiers between ')' and '{'.
  static const std::regex kQualifiers(
      R"((\)\s*)((const|noexcept|override|final|mutable)\b\s*)*(->\s*[\w:<>,\s&*]+)?$)");
  std::smatch m;
  if (std::regex_search(t, m, kQualifiers)) {
    t = t.substr(0, static_cast<std::size_t>(m.position(0)) + 1);
  }

  if (t.empty()) return in_function ? Scope::block : Scope::init;
  const char last = t.back();
  if (last == '=' || last == ',' || last == '(' || last == '{') return Scope::init;
  if (ends_with_token(t, "return")) return Scope::init;
  if (ends_with_token(t, "else") || ends_with_token(t, "do") ||
      ends_with_token(t, "try")) {
    return Scope::block;
  }
  static const std::regex kNamespace(R"(namespace(\s+[\w:]+)?$)");
  if (std::regex_search(t, kNamespace)) return Scope::ns;

  if (last == ')') {
    // Find the matching '(' and look at the token before it.
    int depth = 0;
    std::size_t p = t.size();
    while (p > 0) {
      --p;
      if (t[p] == ')') ++depth;
      if (t[p] == '(') {
        if (--depth == 0) break;
      }
    }
    std::string_view before = rstrip(std::string_view(t).substr(0, p));
    if (!before.empty() && before.back() == ']') return Scope::fn;  // lambda
    for (std::string_view kw : {"if", "for", "while", "switch", "catch"}) {
      if (ends_with_token(before, kw)) return Scope::block;
    }
    return Scope::fn;
  }

  if (last == ']') {
    // A lambda introducer handed straight to '{' — "[&] {", "submit([=] {"
    // — has no parameter list, so the ')' path above never sees it. An
    // array subscript or declarator also ends in ']' but follows an
    // identifier (or another postfix expression); a capture list cannot.
    int depth = 0;
    std::size_t p = t.size();
    while (p > 0) {
      --p;
      if (t[p] == ']') ++depth;
      if (t[p] == '[') {
        if (--depth == 0) break;
      }
    }
    std::string_view before = rstrip(std::string_view(t).substr(0, p));
    const char tail = before.empty() ? '\0' : before.back();
    if (tail == '\0' ||
        !(std::isalnum(static_cast<unsigned char>(tail)) || tail == '_' ||
          tail == ']' || tail == ')')) {
      return Scope::fn;
    }
  }

  // "class X : public Y", "struct Foo", "enum class E" — only look past
  // the last statement boundary so earlier code can't bleed in.
  const std::size_t bound = t.find_last_of(";}{");
  const std::string tail = bound == std::string::npos ? t : t.substr(bound + 1);
  static const std::regex kType(R"(\b(class|struct|union|enum)\b)");
  if (std::regex_search(tail, kType)) return Scope::type;

  return in_function ? Scope::block : Scope::init;
}

namespace {

bool stack_in_function(const std::vector<Scope>& stack) {
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (*it == Scope::fn) return true;
    if (*it == Scope::ns || *it == Scope::type) return false;
  }
  return false;
}

}  // namespace

std::vector<bool> function_lines(const std::vector<std::string>& code) {
  std::vector<bool> in_fn(code.size(), false);
  std::vector<Scope> stack;
  std::string recent;  // trailing significant code before the next '{'
  int parens = 0;      // ';' inside a for-header is not a statement end
  for (std::size_t li = 0; li < code.size(); ++li) {
    in_fn[li] = stack_in_function(stack);
    for (const char c : code[li]) {
      if (c == '(') ++parens;
      if (c == ')' && parens > 0) --parens;
      if (c == '{') {
        stack.push_back(classify_brace(recent, stack_in_function(stack)));
        recent.clear();
        parens = 0;
      } else if (c == '}') {
        if (!stack.empty()) stack.pop_back();
        recent.clear();
        parens = 0;
      } else if (c == ';' && parens == 0) {
        recent.clear();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        if (!recent.empty() && recent.back() != ' ') recent += ' ';
      } else {
        recent += c;
      }
      if (recent.size() > 240) recent.erase(0, recent.size() - 240);
    }
    if (!recent.empty() && recent.back() != ' ') recent += ' ';
  }
  return in_fn;
}

// ---------------------------------------------------------------------------
// Allow annotations
// ---------------------------------------------------------------------------

std::vector<Allow> parse_allows(const std::string& comment) {
  std::vector<Allow> out;
  static const std::string kTag = "satlint:allow(";

  // An annotation comment *starts* with "satlint:" (after whitespace).
  // Prose that merely mentions the syntax — rule docs, diagnostics
  // quoted in comments, examples indented behind an extra "//" — must
  // never parse as a live suppression, or stale-allow would flag it.
  std::size_t lead = 0;
  while (lead < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[lead]))) {
    ++lead;
  }
  if (comment.compare(lead, 8, "satlint:") != 0) return out;

  std::vector<std::size_t> starts;
  for (std::size_t p = comment.find(kTag); p != std::string::npos;
       p = comment.find(kTag, p + 1)) {
    starts.push_back(p);
  }
  for (std::size_t k = 0; k < starts.size(); ++k) {
    std::size_t p = starts[k] + kTag.size();
    std::string rule;
    while (p < comment.size() &&
           (is_ident_char(comment[p]) || comment[p] == '-')) {
      rule += comment[p++];
    }
    if (p >= comment.size() || comment[p] != ')' || rule.empty()) continue;
    ++p;
    while (p < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[p]))) {
      ++p;
    }
    if (p < comment.size() && comment[p] == ':') ++p;
    // The justification runs to the next annotation on the same line (so
    // allows stack: // satlint:allow(a): x satlint:allow(b): y).
    const std::size_t end =
        k + 1 < starts.size() ? starts[k + 1] : comment.size();
    const std::string just(
        rstrip(comment.substr(p, end > p ? end - p : 0)));
    out.push_back({rule, just});
  }

  // Domain-specific alias for float-accum:
  //   // satlint: deterministic-merge: <why the order is fixed>
  static const std::regex kMerge(R"(deterministic-merge\s*[-:]*\s*([^/]*))");
  std::smatch m;
  if (std::regex_search(comment, m, kMerge)) {
    // Not when it appears inside an allow() justification parsed above.
    const auto pos = static_cast<std::size_t>(m.position(0));
    bool inside_allow = false;
    for (std::size_t k = 0; k < starts.size(); ++k) {
      const std::size_t end =
          k + 1 < starts.size() ? starts[k + 1] : comment.size();
      if (pos > starts[k] + kTag.size() && pos < end) inside_allow = true;
    }
    if (!inside_allow) {
      out.push_back({"float-accum", std::string(rstrip(m[1].str()))});
    }
  }
  return out;
}

AllowMap build_allow_map(const Sanitized& s) {
  AllowMap out;
  out.line_sites.resize(s.code.size());
  std::vector<int> carry;  // sites from a run of comment-only lines
  for (std::size_t i = 0; i < s.code.size(); ++i) {
    const bool code_blank = rstrip(s.code[i]).empty();
    std::vector<int> here;
    for (Allow& a : parse_allows(s.comment[i])) {
      here.push_back(static_cast<int>(out.sites.size()));
      out.sites.push_back({std::move(a), static_cast<int>(i + 1)});
    }
    if (code_blank) {
      // Comment-only line: its allows cover this line and carry forward
      // to the next code line. A fully blank line breaks the run.
      out.line_sites[i] = here;
      if (here.empty() && rstrip(s.comment[i]).empty()) {
        carry.clear();
      } else {
        carry.insert(carry.end(), here.begin(), here.end());
      }
    } else {
      out.line_sites[i] = carry;
      out.line_sites[i].insert(out.line_sites[i].end(), here.begin(), here.end());
      carry.clear();
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Function & call-site extraction
// ---------------------------------------------------------------------------

namespace {

bool is_call_keyword(std::string_view id) {
  static const char* kKeywords[] = {
      "if",       "for",      "while",   "switch",        "catch",
      "return",   "sizeof",   "alignof", "decltype",      "new",
      "delete",   "throw",    "assert",  "static_assert", "noexcept",
      "alignas",  "typeid",   "defined", "co_await",      "co_return",
      "co_yield", "requires", "struct",  "class",         "union",
      "enum",     "using",    "typedef", "namespace",     "template",
      "operator", "case",     "do",      "else",          "goto"};
  for (const char* kw : kKeywords) {
    if (id == kw) return true;
  }
  return false;
}

/// Truncates a brace context at a constructor member-init list: the
/// first depth-0 "): " colon (not '::') after a ')' cuts the context
/// back to the parameter list, so the ctor name — not the last member
/// initializer — is extracted.
std::string strip_member_init_list(const std::string& ctx) {
  int depth = 0;
  for (std::size_t p = 0; p < ctx.size(); ++p) {
    const char c = ctx[p];
    if (c == '(' || c == '<') ++depth;
    if (c == ')' || c == '>') --depth;
    if (c != ':' || depth != 0) continue;
    if (p + 1 < ctx.size() && ctx[p + 1] == ':') {
      ++p;  // '::' — skip both
      continue;
    }
    if (p > 0 && ctx[p - 1] == ':') continue;
    // Colon at depth 0: member-init list if the significant char before
    // it is ')'.
    std::string_view before = rstrip(std::string_view(ctx).substr(0, p));
    if (!before.empty() && before.back() == ')') {
      return std::string(before);
    }
  }
  return ctx;
}

struct NameParse {
  std::string name;       // simple name
  std::string qualifier;  // "ThreadPool" for ThreadPool::now_us
  bool is_lambda = false;
};

/// Extracts the function name from the brace context of a Scope::fn '{'.
NameParse parse_fn_name(const std::string& raw_ctx) {
  NameParse out;
  std::string ctx = strip_member_init_list(raw_ctx);

  // Strip trailing qualifiers / return type after the parameter list.
  static const std::regex kQualifiers(
      R"((\)\s*)((const|noexcept|override|final|mutable)\b\s*)*(->\s*[\w:<>,\s&*]+)?$)");
  std::smatch m;
  if (std::regex_search(ctx, m, kQualifiers)) {
    ctx = ctx.substr(0, static_cast<std::size_t>(m.position(0)) + 1);
  }
  std::string t(rstrip(ctx));
  if (t.empty()) return out;
  if (t.back() == ']') {
    // Parameterless lambda ("[&] {"); keep a bound name when present
    // ("auto tick = [&] {").
    out.is_lambda = true;
    int bd = 0;
    std::size_t b = t.size();
    while (b > 0) {
      --b;
      if (t[b] == ']') ++bd;
      if (t[b] == '[') {
        if (--bd == 0) break;
      }
    }
    static const std::regex kBound(R"((\w+)\s*[:=]?=\s*$)");
    std::smatch bm;
    const std::string head(rstrip(std::string_view(t).substr(0, b)));
    if (std::regex_search(head, bm, kBound)) out.name = bm[1].str();
    return out;
  }
  if (t.back() != ')') return out;

  // Find the matching '(' of the trailing parameter list.
  int depth = 0;
  std::size_t p = t.size();
  while (p > 0) {
    --p;
    if (t[p] == ')') ++depth;
    if (t[p] == '(') {
      if (--depth == 0) break;
    }
  }
  std::string_view before = rstrip(std::string_view(t).substr(0, p));
  if (!before.empty() && before.back() == ']') {
    out.is_lambda = true;
    // A lambda bound to a name keeps it: "auto tick = [..](..) {".
    // Find the '[' matching the trailing ']' and look for "name =".
    int bd = 0;
    std::size_t b = before.size();
    while (b > 0) {
      --b;
      if (before[b] == ']') ++bd;
      if (before[b] == '[') {
        if (--bd == 0) break;
      }
    }
    static const std::regex kBound(R"((\w+)\s*[:=]?=\s*$)");
    std::smatch bm;
    std::string head(rstrip(before.substr(0, b)));
    if (std::regex_search(head, bm, kBound)) {
      out.name = bm[1].str();
    } else {
      out.name = "<lambda>";
    }
    return out;
  }

  // Walk back over the name chain: identifiers, '::', '~', template ids.
  std::size_t e = before.size();
  std::size_t b = e;
  int angle = 0;
  while (b > 0) {
    const char c = before[b - 1];
    if (c == '>') ++angle;
    if (c == '<') --angle;
    if (angle > 0 || is_ident_char(c) || c == ':' || c == '~' || c == '>' ||
        c == '<') {
      --b;
      continue;
    }
    break;
  }
  std::string chain(before.substr(b, e - b));
  // Drop a template argument list from the tail ("Foo<int>" -> "Foo").
  const std::size_t lt = chain.find('<');
  if (lt != std::string::npos) chain = chain.substr(0, lt);
  while (!chain.empty() && chain.front() == ':') chain.erase(0, 1);
  if (chain.empty()) return out;
  const std::size_t sep = chain.rfind("::");
  if (sep == std::string::npos) {
    out.name = chain;
  } else {
    out.name = chain.substr(sep + 2);
    out.qualifier = chain.substr(0, sep);
  }
  if (out.name.empty() || is_call_keyword(out.name)) out.name.clear();
  return out;
}

/// Does the text before a lambda-introducer hand the lambda to a worker
/// runner (ThreadPool::submit, ShardedCampaign's shard fn, std::thread)?
bool is_worker_context(std::string_view head) {
  for (std::string_view pat :
       {"submit(", "submit (", "ShardedCampaign", "std::thread", "thread("}) {
    if (head.find(pat) != std::string_view::npos) return true;
  }
  return false;
}

struct StackEntry {
  Scope scope;
  std::string name;  // namespace / type name for qualification
  int fn = -1;       // FunctionDef index for Scope::fn
};

}  // namespace

FileSymbols extract_symbols(const Sanitized& s) {
  FileSymbols out;
  std::vector<StackEntry> stack;
  std::string recent;

  const auto innermost_fn = [&]() -> int {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->scope == Scope::fn) return it->fn;
      if (it->scope == Scope::ns || it->scope == Scope::type) return -1;
    }
    return -1;
  };
  const auto in_function = [&] { return innermost_fn() >= 0; };
  const auto qual_prefix = [&] {
    std::string q;
    for (const StackEntry& e : stack) {
      if ((e.scope == Scope::ns || e.scope == Scope::type) && !e.name.empty()) {
        if (!q.empty()) q += "::";
        q += e.name;
      }
    }
    return q;
  };

  int parens = 0;  // ';' inside a for-header is not a statement end
  for (std::size_t li = 0; li < s.code.size(); ++li) {
    const std::string& line = s.code[li];
    std::size_t j = 0;
    // Identifier chain state for call detection. `chain` holds the
    // "A::B" path already consumed; `member_base` the expression before
    // a '.'/'->'; `decl_head` the type-looking identifier preceding the
    // current one, so "double wall_ms();" reads as a declaration, not a
    // call into wall_ms.
    std::string chain;
    std::string member_base;
    bool after_member = false;
    std::string last_ident;
    std::string decl_head;

    while (j < line.size()) {
      const char c = line[j];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = j;
        while (j < line.size() && is_ident_char(line[j])) ++j;
        std::string id = line.substr(start, j - start);
        recent += id;
        // Lookahead past whitespace (and a template argument list).
        std::size_t k = j;
        while (k < line.size() &&
               std::isspace(static_cast<unsigned char>(line[k]))) {
          ++k;
        }
        bool templated = false;
        if (k < line.size() && line[k] == '<') {
          int d = 0;
          std::size_t t = k;
          while (t < line.size()) {
            if (line[t] == '<') ++d;
            if (line[t] == '>') {
              if (--d == 0) {
                ++t;
                break;
              }
            }
            // Give up on comparison-operator lookalikes.
            if (line[t] == ';' || line[t] == '{') {
              d = -1;
              break;
            }
            ++t;
          }
          if (d == 0) {
            std::size_t t2 = t;
            while (t2 < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[t2]))) {
              ++t2;
            }
            if (t2 < line.size() && line[t2] == '(') {
              templated = true;
              k = t2;
            }
          }
        }
        if (k + 1 < line.size() && line[k] == ':' && line[k + 1] == ':' &&
            !templated) {
          // Qualification continues: A::B::...
          if (!chain.empty()) chain += "::";
          chain += id;
          j = k + 2;
          recent += "::";
          after_member = false;
          continue;
        }
        if (k < line.size() && line[k] == '(') {
          // "Type name(" is a declaration (or a constructed local), not
          // a call — unless the preceding token is a statement keyword
          // ("return wall_ms()").
          const bool declaration =
              !decl_head.empty() && !is_call_keyword(decl_head);
          if (!is_call_keyword(id) && !declaration) {
            CallSite cs;
            cs.caller = innermost_fn();
            cs.name = id;
            cs.qualifier = after_member ? member_base : chain;
            cs.member = after_member;
            cs.line = static_cast<int>(li + 1);
            out.calls.push_back(std::move(cs));
          }
        }
        last_ident = id;
        decl_head = id;
        chain.clear();
        after_member = false;
        continue;
      }
      // Non-identifier char: update chain/member state.
      if (c == '.' && (j + 1 >= line.size() || !std::isdigit(static_cast<unsigned char>(
                                                  line[j + 1])))) {
        member_base = last_ident;
        after_member = true;
        decl_head.clear();
      } else if (c == '-' && j + 1 < line.size() && line[j + 1] == '>') {
        member_base = last_ident;
        after_member = true;
        decl_head.clear();
        recent += "->";
        j += 2;
        continue;
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        if (c != ':') {
          chain.clear();
          after_member = false;
        }
        if (c != '(' && c != ')') last_ident.clear();
        decl_head.clear();
      }

      // Scope bookkeeping (mirrors function_lines).
      if (c == '(') ++parens;
      if (c == ')' && parens > 0) --parens;
      if (c == '{') {
        const Scope sc = classify_brace(recent, in_function());
        StackEntry entry{sc, "", -1};
        if (sc == Scope::fn) {
          const NameParse np = parse_fn_name(recent);
          FunctionDef def;
          def.name = np.name.empty() ? "<lambda>" : np.name;
          def.is_lambda = np.is_lambda;
          def.line_begin = static_cast<int>(li + 1);
          def.parent = innermost_fn();
          std::string q = qual_prefix();
          if (!np.qualifier.empty()) {
            q = q.empty() ? np.qualifier : q + "::" + np.qualifier;
          }
          if (def.parent >= 0) {
            def.qualified = out.defs[static_cast<std::size_t>(def.parent)].qualified +
                            "::" + def.name;
          } else {
            def.qualified = q.empty() ? def.name : q + "::" + def.name;
          }
          if (np.is_lambda) {
            def.worker_entry = is_worker_context(recent);
          }
          entry.fn = static_cast<int>(out.defs.size());
          out.defs.push_back(std::move(def));
        } else if (sc == Scope::ns) {
          static const std::regex kNsName(R"(namespace\s+([\w:]+)\s*$)");
          std::smatch nm;
          if (std::regex_search(recent, nm, kNsName)) entry.name = nm[1].str();
        } else if (sc == Scope::type) {
          static const std::regex kTypeName(
              R"(\b(?:class|struct|union|enum)\s+(?:class\s+|struct\s+)?(\w+))");
          std::smatch nm;
          const std::size_t bound = recent.find_last_of(";}{");
          const std::string tail =
              bound == std::string::npos ? recent : recent.substr(bound + 1);
          if (std::regex_search(tail, nm, kTypeName)) entry.name = nm[1].str();
        }
        stack.push_back(std::move(entry));
        recent.clear();
        parens = 0;
      } else if (c == '}') {
        if (!stack.empty()) {
          if (stack.back().scope == Scope::fn && stack.back().fn >= 0) {
            out.defs[static_cast<std::size_t>(stack.back().fn)].line_end =
                static_cast<int>(li + 1);
          }
          stack.pop_back();
        }
        recent.clear();
        parens = 0;
      } else if (c == ';' && parens == 0) {
        recent.clear();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        if (!recent.empty() && recent.back() != ' ') recent += ' ';
      } else {
        recent += c;
      }
      if (recent.size() > 240) recent.erase(0, recent.size() - 240);
      ++j;
    }
    if (!recent.empty() && recent.back() != ' ') recent += ' ';
  }

  // Close any functions left open by unbalanced input.
  for (FunctionDef& d : out.defs) {
    if (d.line_end == 0) d.line_end = static_cast<int>(s.code.size());
  }
  return out;
}

}  // namespace satlint::lex
