// benchreport: the perf-regression ledger behind verify.sh --golden
// and the CI advisory gate.
//
// The repo's benches each hand-write one BENCH_<name>.json with a
// bench-specific shape (nested objects of numbers/bools/strings).
// benchreport normalizes every file into one flat schema — a BenchRun
// of dot-joined metric keys ("mlab_campaign.warm_speedup") — appends
// runs to a committed JSONL ledger (bench/ledger/history.jsonl), and
// diffs the newest run against a baseline with a tolerance gate.
//
// Direction is inferred from the metric key, so bench authors never
// annotate anything:
//   *_ms, *_us, *_ns, *_sec, *_bytes        lower is better (gated)
//   *speedup*, *hit_ratio*, *_met, *ok*     higher is better (gated)
//   anything else (counts, ids)             informational (never gated)
//
// Absolute times are machine-dependent, so callers choose the gate:
// ratios_only=true checks only the higher-is-better family (speedups
// and hit ratios — stable across machines), which is what the verify.sh
// hard gate uses; CI's advisory step runs the full check.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace satnet::benchreport {

/// One normalized bench result: every numeric leaf of a BENCH json,
/// flattened with '.' between nesting levels. Booleans become 0/1.
struct BenchRun {
  std::string bench;  ///< from the file's "bench" key (else the filename)
  std::string run_id;
  std::map<std::string, double> metrics;
};

/// Which way a metric should move to count as an improvement.
enum class Direction { lower_better, higher_better, info };

Direction metric_direction(const std::string& key);

/// Parses one BENCH_*.json document. Returns false (and fills *error)
/// on malformed input; unknown value types are skipped, not fatal.
bool parse_bench_json(const std::string& text, const std::string& fallback_name,
                      BenchRun* out, std::string* error);

/// Reads a whole file; false + *error when unreadable.
bool read_file(const std::string& path, std::string* out, std::string* error);

/// One ledger line per run ({"type":"benchrun",...}, no trailing \n).
std::string ledger_line(const BenchRun& run);

/// Parses ledger JSONL; non-benchrun lines are ignored.
std::vector<BenchRun> parse_ledger(const std::string& text);

/// One metric compared against the baseline.
struct MetricDelta {
  std::string bench;
  std::string key;
  Direction direction = Direction::info;
  double baseline = 0;
  double current = 0;
  double ratio = 0;  ///< current / baseline (0 when baseline == 0)
  bool regression = false;
};

/// Gate verdict for a set of current runs against a baseline set.
struct CheckResult {
  std::vector<MetricDelta> deltas;     ///< every comparable metric
  std::vector<MetricDelta> regressions;  ///< the failing subset
  std::vector<std::string> missing_benches;  ///< in baseline, absent now

  bool ok() const { return regressions.empty(); }
};

/// Compares `current` against `baseline` bench-by-bench. A gated metric
/// regresses when it moves in the losing direction by more than
/// `tolerance` (fraction, e.g. 0.15 = 15%). With `ratios_only`, only
/// higher-is-better metrics are gated (machine-independent speedups and
/// hit ratios); lower-is-better absolute times become informational.
CheckResult check(const std::vector<BenchRun>& baseline,
                  const std::vector<BenchRun>& current, double tolerance,
                  bool ratios_only);

/// Human-readable delta table (regressions flagged with "REGRESSED").
std::string render_table(const CheckResult& result, double tolerance);

}  // namespace satnet::benchreport
