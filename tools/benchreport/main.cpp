// benchreport CLI: normalize BENCH_*.json files, append to the ledger,
// and gate against a baseline.
//
//   benchreport --append BENCH_a.json ... [--ledger DIR] [--run-id ID]
//   benchreport --check  BENCH_a.json ... [--baseline FILE]
//                        [--tolerance X] [--ratios-only]
//
// --append writes one {"type":"benchrun",...} line per file to
// <ledger>/history.jsonl (created if missing). --check compares the
// given files against the baseline ledger (default
// <ledger>/baseline.jsonl) and exits 1 when a gated metric regresses
// past the tolerance. Missing benches are reported but never fail the
// gate, so partial runs stay usable.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "benchreport.hpp"

namespace {

using namespace satnet::benchreport;

int usage() {
  std::fprintf(stderr,
               "usage: benchreport --append FILES... [--ledger DIR] [--run-id ID]\n"
               "       benchreport --check FILES... [--baseline FILE]\n"
               "                   [--tolerance X] [--ratios-only] [--ledger DIR]\n");
  return 2;
}

std::string basename_no_ext(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return name;
}

bool load_runs(const std::vector<std::string>& files, const std::string& run_id,
               std::vector<BenchRun>* out) {
  for (const std::string& path : files) {
    std::string text;
    std::string error;
    if (!read_file(path, &text, &error)) {
      std::fprintf(stderr, "benchreport: %s\n", error.c_str());
      return false;
    }
    BenchRun run;
    if (!parse_bench_json(text, basename_no_ext(path), &run, &error)) {
      std::fprintf(stderr, "benchreport: %s: %s\n", path.c_str(), error.c_str());
      return false;
    }
    run.run_id = run_id;
    out->push_back(std::move(run));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool do_append = false;
  bool do_check = false;
  bool ratios_only = false;
  double tolerance = 0.15;
  std::string ledger_dir = "bench/ledger";
  std::string baseline_path;
  std::string run_id = "local";
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--append") {
      do_append = true;
    } else if (arg == "--check") {
      do_check = true;
    } else if (arg == "--ratios-only") {
      ratios_only = true;
    } else if (arg == "--ledger" && i + 1 < argc) {
      ledger_dir = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--run-id" && i + 1 < argc) {
      run_id = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "benchreport: unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if ((do_append == do_check) || files.empty()) return usage();

  std::vector<BenchRun> runs;
  if (!load_runs(files, run_id, &runs)) return 2;

  if (do_append) {
    const std::string path = ledger_dir + "/history.jsonl";
    std::ofstream out(path, std::ios::app);
    if (!out) {
      std::fprintf(stderr, "benchreport: cannot open %s for append\n",
                   path.c_str());
      return 2;
    }
    for (const BenchRun& run : runs) {
      out << ledger_line(run) << "\n";
      std::printf("benchreport: appended %s (%zu metrics) to %s\n",
                  run.bench.c_str(), run.metrics.size(), path.c_str());
    }
    return 0;
  }

  if (baseline_path.empty()) baseline_path = ledger_dir + "/baseline.jsonl";
  std::string text;
  std::string error;
  if (!read_file(baseline_path, &text, &error)) {
    std::fprintf(stderr, "benchreport: %s\n", error.c_str());
    return 2;
  }
  const std::vector<BenchRun> baseline = parse_ledger(text);
  if (baseline.empty()) {
    std::fprintf(stderr, "benchreport: baseline %s has no benchrun lines\n",
                 baseline_path.c_str());
    return 2;
  }
  const CheckResult result = check(baseline, runs, tolerance, ratios_only);
  std::fputs(render_table(result, tolerance).c_str(), stdout);
  return result.ok() ? 0 : 1;
}
