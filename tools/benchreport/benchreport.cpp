#include "benchreport.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace satnet::benchreport {

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// ---- minimal recursive JSON parser, just enough for the BENCH files
// and our own ledger lines: objects, strings, numbers, booleans, null,
// and (flattened by index) arrays. ----

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  explicit Parser(const std::string& t) : text(t) {}

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }

  bool fail(const char* what) {
    if (error.empty()) {
      error = std::string(what) + " at offset " + std::to_string(pos);
    }
    return false;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\' && pos < text.size()) {
        const char n = text[pos++];
        *out += n == 'n' ? '\n' : n == 't' ? '\t' : n;
      } else {
        *out += c;
      }
    }
    return fail("unterminated string");
  }

  /// Parses any value. Numeric/boolean leaves land in `metrics` under
  /// `key`; strings and nulls are skipped; objects/arrays recurse with
  /// dot-joined keys.
  bool parse_value(const std::string& key,
                   std::map<std::string, double>* metrics,
                   std::map<std::string, std::string>* strings) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end");
    const char c = text[pos];
    if (c == '{') return parse_object(key, metrics, strings);
    if (c == '[') {
      ++pos;
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      std::size_t index = 0;
      for (;;) {
        if (!parse_value(key + "." + std::to_string(index), metrics, strings))
          return false;
        ++index;
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        break;
      }
      skip_ws();
      if (pos >= text.size() || text[pos] != ']') return fail("expected ]");
      ++pos;
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      if (strings != nullptr) (*strings)[key] = std::move(s);
      return true;
    }
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      (*metrics)[key] = 1.0;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      (*metrics)[key] = 0.0;
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      return true;
    }
    char* end = nullptr;
    const double v = std::strtod(text.c_str() + pos, &end);
    if (end == text.c_str() + pos) return fail("expected value");
    pos = static_cast<std::size_t>(end - text.c_str());
    (*metrics)[key] = v;
    return true;
  }

  bool parse_object(const std::string& prefix,
                    std::map<std::string, double>* metrics,
                    std::map<std::string, std::string>* strings) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '{') return fail("expected {");
    ++pos;
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return fail("expected :");
      ++pos;
      const std::string full = prefix.empty() ? key : prefix + "." + key;
      if (!parse_value(full, metrics, strings)) return false;
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      break;
    }
    skip_ws();
    if (pos >= text.size() || text[pos] != '}') return fail("expected }");
    ++pos;
    return true;
  }
};

}  // namespace

Direction metric_direction(const std::string& key) {
  // Gate families by suffix/substring; everything else is context
  // (counts, sizes-of-input, flags we can't rank).
  if (contains(key, "speedup") || contains(key, "hit_ratio") ||
      ends_with(key, "_met") || ends_with(key, "_ok") ||
      ends_with(key, "identical")) {
    return Direction::higher_better;
  }
  if (ends_with(key, "_ms") || ends_with(key, "_us") || ends_with(key, "_ns") ||
      ends_with(key, "_sec") || ends_with(key, "_bytes")) {
    return Direction::lower_better;
  }
  return Direction::info;
}

bool parse_bench_json(const std::string& text, const std::string& fallback_name,
                      BenchRun* out, std::string* error) {
  Parser p(text);
  std::map<std::string, double> metrics;
  std::map<std::string, std::string> strings;
  if (!p.parse_object("", &metrics, &strings)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  out->bench = fallback_name;
  if (const auto it = strings.find("bench"); it != strings.end()) {
    out->bench = it->second;
  }
  out->metrics = std::move(metrics);
  return true;
}

bool read_file(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string ledger_line(const BenchRun& run) {
  std::string line = "{\"type\":\"benchrun\",\"bench\":\"" +
                     json_escape(run.bench) + "\",\"run\":\"" +
                     json_escape(run.run_id) + "\",\"metrics\":{";
  bool first = true;
  for (const auto& [key, value] : run.metrics) {
    if (!first) line += ",";
    first = false;
    line += "\"" + json_escape(key) + "\":" + fmt_double(value);
  }
  line += "}}";
  return line;
}

std::vector<BenchRun> parse_ledger(const std::string& text) {
  std::vector<BenchRun> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Parser p(line);
    std::map<std::string, double> metrics;
    std::map<std::string, std::string> strings;
    if (!p.parse_object("", &metrics, &strings)) continue;
    const auto type = strings.find("type");
    if (type == strings.end() || type->second != "benchrun") continue;
    BenchRun run;
    if (const auto it = strings.find("bench"); it != strings.end()) {
      run.bench = it->second;
    }
    if (const auto it = strings.find("run"); it != strings.end()) {
      run.run_id = it->second;
    }
    // Flattened keys carry the "metrics." prefix; strip it back off.
    for (const auto& [key, value] : metrics) {
      if (key.rfind("metrics.", 0) == 0) run.metrics[key.substr(8)] = value;
    }
    out.push_back(std::move(run));
  }
  return out;
}

CheckResult check(const std::vector<BenchRun>& baseline,
                  const std::vector<BenchRun>& current, double tolerance,
                  bool ratios_only) {
  CheckResult result;
  for (const BenchRun& base : baseline) {
    // Latest current entry for the bench wins (ledgers append in order).
    const BenchRun* cur = nullptr;
    for (const BenchRun& c : current) {
      if (c.bench == base.bench) cur = &c;
    }
    if (cur == nullptr) {
      result.missing_benches.push_back(base.bench);
      continue;
    }
    for (const auto& [key, base_value] : base.metrics) {
      const auto it = cur->metrics.find(key);
      if (it == cur->metrics.end()) continue;
      MetricDelta d;
      d.bench = base.bench;
      d.key = key;
      d.direction = metric_direction(key);
      if (ratios_only && d.direction == Direction::lower_better) {
        d.direction = Direction::info;
      }
      d.baseline = base_value;
      d.current = it->second;
      d.ratio = base_value != 0 ? it->second / base_value : 0.0;
      switch (d.direction) {
        case Direction::lower_better:
          d.regression = it->second > base_value * (1.0 + tolerance);
          break;
        case Direction::higher_better:
          d.regression = it->second < base_value * (1.0 - tolerance);
          break;
        case Direction::info:
          d.regression = false;
          break;
      }
      if (d.regression) result.regressions.push_back(d);
      result.deltas.push_back(std::move(d));
    }
  }
  return result;
}

std::string render_table(const CheckResult& result, double tolerance) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "benchreport: %zu metrics compared, %zu gated regression(s), "
                "tolerance %.0f%%\n",
                result.deltas.size(), result.regressions.size(),
                tolerance * 100.0);
  out += line;
  for (const auto& d : result.deltas) {
    const char* dir = d.direction == Direction::lower_better    ? "lower"
                      : d.direction == Direction::higher_better ? "higher"
                                                                : "info";
    std::snprintf(line, sizeof(line),
                  "  %-28s %-34s %12.4g -> %-12.4g (%6.1f%%) [%s]%s\n",
                  d.bench.c_str(), d.key.c_str(), d.baseline, d.current,
                  d.baseline != 0 ? (d.ratio - 1.0) * 100.0 : 0.0, dir,
                  d.regression ? " REGRESSED" : "");
    out += line;
  }
  for (const auto& bench : result.missing_benches) {
    std::snprintf(line, sizeof(line),
                  "  %-28s missing from current run set (not gated)\n",
                  bench.c_str());
    out += line;
  }
  return out;
}

}  // namespace satnet::benchreport
